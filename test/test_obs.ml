(* Observability tests: the JSON printer/parser round-trip, ring-buffer
   wraparound, sink file formats parsed back, metrics-snapshot
   determinism, and a golden check that the per-function profile names
   the program's real functions. *)

module Json = Hb_obs.Json
module Metrics = Hb_obs.Metrics
module Trace = Hb_obs.Trace
module Profile = Hb_obs.Profile
module Machine = Hb_cpu.Machine
module Codegen = Hb_minic.Codegen

(* ---- Json ------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("bool", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("string", Json.String "esc \" \\ \n \t \x01 end");
        ("list", Json.List [ Json.Int 1; Json.String "two"; Json.Null ]);
        ("nested", Json.Obj [ ("k", Json.List []) ]);
      ]
  in
  let compact = Json.to_string doc in
  Alcotest.(check bool)
    "compact form has no raw newline" false
    (String.contains compact '\n');
  Alcotest.(check bool) "compact round-trips" true
    (Json.of_string compact = doc);
  Alcotest.(check bool) "pretty round-trips" true
    (Json.of_string (Json.to_string_pretty doc) = doc);
  (match Json.member "int" doc with
   | Some j -> Alcotest.(check (option int)) "member/to_int" (Some (-42)) (Json.to_int j)
   | None -> Alcotest.fail "member lookup failed");
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail ("parser accepted: " ^ bad))
    [ "{"; "[1,]"; "tru"; "\"open"; "1 2"; "{\"a\":}" ]

(* ---- Trace ring buffer ----------------------------------------------- *)

let ev i = Trace.Setbound { base = i; bound = i + 4; unsafe = false }

let test_ring_wraparound () =
  let tr = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.emit tr ~cycle:i ~pc:i ~fn:"f" (ev i)
  done;
  Alcotest.(check int) "all emissions counted" 10 (Trace.emitted tr);
  let window = Trace.recent tr in
  Alcotest.(check int) "window clipped to capacity" 4 (List.length window);
  Alcotest.(check (list int))
    "window is the newest events, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Trace.event) -> e.Trace.cycle) window);
  Alcotest.(check (list int))
    "sequence numbers are global" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Trace.event) -> e.Trace.seq) window);
  (* a partially-filled ring returns only what was emitted *)
  let tr2 = Trace.create ~capacity:8 () in
  Trace.emit tr2 ~cycle:1 ~pc:0 ~fn:"g" (ev 1);
  Alcotest.(check int) "partial window" 1 (List.length (Trace.recent tr2))

let test_sink_sees_every_event () =
  let seen = ref [] in
  let tr = Trace.create ~sink:(fun e -> seen := e :: !seen) ~capacity:2 () in
  for i = 0 to 5 do
    Trace.emit tr ~cycle:i ~pc:i ~fn:"f" (ev i)
  done;
  Alcotest.(check int) "sink not limited by capacity" 6 (List.length !seen)

(* ---- File sinks parse back ------------------------------------------- *)

let with_sink fmt k =
  let path = Filename.temp_file "hb_obs_test" ".json" in
  let sink = Trace.file_sink fmt path in
  for i = 0 to 9 do
    sink.Trace.write
      { Trace.seq = i; cycle = 2 * i; pc = i; fn = "fn" ^ string_of_int i;
        kind =
          (if i mod 2 = 0 then ev i
           else
             Trace.Cache_miss
               { cls = "data"; level = "L1D"; addr = i; penalty = 12 });
      }
  done;
  sink.Trace.close ();
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  k contents

let test_jsonl_sink_wellformed () =
  with_sink Trace.Jsonl (fun contents ->
      let lines =
        String.split_on_char '\n' contents
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "one line per event" 10 (List.length lines);
      List.iteri
        (fun i line ->
          let j = Json.of_string line in
          Alcotest.(check (option int))
            (Printf.sprintf "line %d seq" i)
            (Some i)
            (Option.bind (Json.member "seq" j) Json.to_int))
        lines)

let test_chrome_sink_wellformed () =
  with_sink Trace.Chrome (fun contents ->
      match Json.to_list (Json.of_string contents) with
      | None -> Alcotest.fail "chrome trace is not a JSON array"
      | Some events ->
        Alcotest.(check int) "one record per event" 10 (List.length events);
        List.iter
          (fun e ->
            Alcotest.(check bool) "record has ph" true
              (Json.member "ph" e <> None);
            Alcotest.(check bool) "record has ts" true
              (Json.member "ts" e <> None))
          events)

(* ---- Metrics determinism --------------------------------------------- *)

let buggy = {|
int sum(int *a, int n) {
  int s;
  int i;
  s = 0;
  for (i = 0; i <= n; i++) { s = s + a[i]; }
  return s;
}

int main() {
  int *a;
  int i;
  a = (int*)malloc(10 * sizeof(int));
  for (i = 0; i < 10; i++) { a[i] = i; }
  print_int(sum(a, 9));
  return 0;
}
|}

let run_workload ?(profile = false) () =
  Hardbound.Checker.reset_tally ();
  let mode = Codegen.Hardbound in
  let image, globals = Hb_runtime.Build.compile ~mode buggy in
  let config = Hb_runtime.Build.config_for mode in
  let m = Machine.create ~config ~globals image in
  if profile then Machine.enable_profile m;
  (match Machine.run m with
   | Machine.Exited 0 -> ()
   | st -> Alcotest.fail (Machine.status_name st));
  m

let test_metrics_deterministic () =
  let snap () =
    Json.to_string (Metrics.snapshot (Machine.metrics (run_workload ())))
  in
  let a = snap () and b = snap () in
  Alcotest.(check string) "identical runs snapshot identically" a b;
  (* and the snapshot itself is valid JSON with both sections *)
  let j = Json.of_string a in
  Alcotest.(check bool) "has counters" true (Json.member "counters" j <> None);
  Alcotest.(check bool) "has histograms" true
    (Json.member "histograms" j <> None)

let test_metrics_labels () =
  let reg = Metrics.create () in
  Metrics.set_counter reg ~labels:[ ("cache", "l1d") ] "cache.misses" 3;
  Metrics.set_counter reg ~labels:[ ("cache", "l2") ] "cache.misses" 5;
  let c = Metrics.counter reg ~labels:[ ("cache", "l1d") ] "cache.misses" in
  Metrics.inc ~by:2 c;
  match Json.member "counters" (Metrics.snapshot reg) with
  | Some (Json.List rows) ->
    let value_of lbl =
      List.find_map
        (fun r ->
          match (Json.member "labels" r, Json.member "value" r) with
          | Some (Json.Obj [ ("cache", Json.String l) ]), Some (Json.Int v)
            when l = lbl ->
            Some v
          | _ -> None)
        rows
    in
    Alcotest.(check (option int)) "same series found and bumped" (Some 5)
      (value_of "l1d");
    Alcotest.(check (option int)) "distinct series kept apart" (Some 5)
      (value_of "l2")
  | _ -> Alcotest.fail "counters section missing"

(* ---- OpenMetrics exposition: hostile labels, framing ------------------ *)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_prometheus_escaping () =
  let reg = Metrics.create () in
  (* hostile label values: every character class the exposition format
     must escape (backslash, double quote, literal newline) *)
  Metrics.set_counter reg
    ~labels:[ ("path", "C:\\tmp\\\"weird\"\nfile") ]
    "io.reads" 7;
  Metrics.set_counter reg ~labels:[ ("plain", "ok") ] "io.reads" 1;
  let text = Metrics.to_prometheus reg in
  Alcotest.(check bool) "backslash doubled" true
    (contains_sub text "C:\\\\tmp\\\\");
  Alcotest.(check bool) "quotes escaped" true
    (contains_sub text "\\\"weird\\\"");
  Alcotest.(check bool) "newline escaped" true (contains_sub text "\\n");
  (* the raw newline must NOT survive inside a label value: every line
     of the exposition is either a comment, blank, or name{...} value *)
  List.iter
    (fun line ->
      if String.length line > 0 then
        Alcotest.(check bool)
          ("well-formed line: " ^ line)
          true
          (line.[0] = '#'
          || contains_sub line " "))
    (String.split_on_char '\n' text);
  (* exactly one EOF marker, at the very end *)
  let eof = "# EOF\n" in
  let n = String.length text and ne = String.length eof in
  Alcotest.(check bool) "ends with # EOF" true
    (n >= ne && String.sub text (n - ne) ne = eof);
  Alcotest.(check bool) "single EOF marker" true
    (not (contains_sub (String.sub text 0 (n - ne)) "# EOF"))

(* Golden exposition of a sparse-bucket histogram: cumulative [le]
   series over only the populated power-of-two buckets, the [+Inf]
   closer, [_sum]/[_count]/[_min]/[_max], hostile label values escaped —
   pinned byte-for-byte so the format cannot drift silently. *)
let test_histogram_golden_exposition () =
  let reg = Metrics.create () in
  let h =
    Metrics.histogram reg ~labels:[ ("op", "a\"b\\c\nd") ] "span.wall_ns"
  in
  List.iter (Metrics.observe h) [ 3; 700; 700; 5_000_000 ];
  let lbl = {|{op="a\"b\\c\nd"|} in
  let golden =
    String.concat "\n"
      [
        "# TYPE span_wall_ns histogram";
        Printf.sprintf {|span_wall_ns_bucket%s,le="4"} 1|} lbl;
        Printf.sprintf {|span_wall_ns_bucket%s,le="1024"} 3|} lbl;
        Printf.sprintf {|span_wall_ns_bucket%s,le="8388608"} 4|} lbl;
        Printf.sprintf {|span_wall_ns_bucket%s,le="+Inf"} 4|} lbl;
        Printf.sprintf {|span_wall_ns_sum%s} 5001403|} lbl;
        Printf.sprintf {|span_wall_ns_count%s} 4|} lbl;
        Printf.sprintf {|span_wall_ns_min%s} 3|} lbl;
        Printf.sprintf {|span_wall_ns_max%s} 5000000|} lbl;
        "# EOF";
        "";
      ]
  in
  Alcotest.(check string) "golden histogram exposition" golden
    (Metrics.to_prometheus reg)

(* The pinned non-positive semantics: v <= 0 folds into bucket 0
   (exposed as le="1") while sum/min/max see the raw value; an empty
   histogram reads _min/_max 0. *)
let test_observe_non_positive () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "lat" in
  Metrics.observe h (-5);
  Metrics.observe h 0;
  let text = Metrics.to_prometheus reg in
  List.iter
    (fun line ->
      Alcotest.(check bool) ("exposition has: " ^ line) true
        (contains_sub text (line ^ "\n")))
    [
      {|lat_bucket{le="1"} 2|};
      {|lat_bucket{le="+Inf"} 2|};
      "lat_sum -5";
      "lat_count 2";
      "lat_min -5";
      "lat_max 0";
    ];
  (* no observation leaked past the le="1" clamp into a higher bucket *)
  Alcotest.(check bool) "only the clamp bucket and +Inf" false
    (contains_sub text {|lat_bucket{le="2"}|});
  let empty_reg = Metrics.create () in
  ignore (Metrics.histogram empty_reg "idle");
  let text = Metrics.to_prometheus empty_reg in
  List.iter
    (fun line ->
      Alcotest.(check bool) ("empty histogram: " ^ line) true
        (contains_sub text (line ^ "\n")))
    [ {|idle_bucket{le="+Inf"} 0|}; "idle_count 0"; "idle_min 0"; "idle_max 0" ]

let test_prometheus_name_sanitization () =
  let reg = Metrics.create () in
  Metrics.set_counter reg "cache.l1d.misses" 3;
  let text = Metrics.to_prometheus reg in
  (* dotted registry names must come out as valid prometheus names *)
  Alcotest.(check bool) "dots become underscores" true
    (contains_sub text "cache_l1d_misses 3");
  Alcotest.(check bool) "no dotted name leaks" false
    (contains_sub text "cache.l1d")

(* ---- Profile golden: real function names ----------------------------- *)

let test_profile_names_functions () =
  let m = run_workload ~profile:true () in
  match Machine.profile m with
  | None -> Alcotest.fail "profile not enabled"
  | Some p ->
    let rows = Profile.rows p in
    let names = List.map (fun (r : Profile.row) -> r.Profile.fn) rows in
    List.iter
      (fun fn ->
        Alcotest.(check bool) ("profile row for " ^ fn) true
          (List.mem fn names))
      [ "main"; "sum"; "malloc" ];
    (* cycles must reconcile with the machine's own counter *)
    let total =
      List.fold_left (fun a (r : Profile.row) -> a + r.Profile.cycles) 0 rows
    in
    Alcotest.(check int) "profile cycles = stats cycles"
      (Hb_cpu.Stats.cycles m.Machine.stats)
      total;
    (* the flat table renders those names too *)
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    let table = Profile.to_table p in
    List.iter
      (fun fn ->
        Alcotest.(check bool) (fn ^ " in table") true (contains table fn))
      [ "main"; "sum" ]

(* The single JSON string escaper every emitter routes through (the
   printer, the Chrome-trace sinks in Host/Fleet, the speedscope export):
   hostile names must come back byte-identical through a parse. *)
let test_escape_to_hostile () =
  let escape s =
    let b = Buffer.create 32 in
    Json.escape_to b s;
    Buffer.contents b
  in
  (* the literal is a quoted JSON string that parses back to the input *)
  List.iter
    (fun s ->
      let lit = escape s in
      Alcotest.(check bool) "literal is quoted" true
        (String.length lit >= 2 && lit.[0] = '"'
        && lit.[String.length lit - 1] = '"');
      (* no raw control characters survive in the literal *)
      String.iter
        (fun c ->
          Alcotest.(check bool) "no raw control char" false (Char.code c < 0x20))
        lit;
      match Json.of_string lit with
      | Json.String back ->
        Alcotest.(check string) "round-trips byte-identical" s back
      | _ -> Alcotest.fail "escaped literal did not parse as a string")
    [
      "plain";
      "quo\"te";
      "back\\slash";
      "new\nline\rtab\t";
      "\x00\x01\x1f mixed \"\\ all";
      "trailing\\";
    ];
  (* the printer's String case is the same code path *)
  Alcotest.(check string) "printer agrees with escape_to"
    (escape "a\"b\\c\nd")
    (Json.to_string (Json.String "a\"b\\c\nd"))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "obs"
    [
      ( "json",
        [
          tc "print/parse round-trip and rejects malformed" test_json_roundtrip;
          tc "escape_to handles hostile names" test_escape_to_hostile;
        ] );
      ( "trace",
        [
          tc "ring buffer wraparound" test_ring_wraparound;
          tc "sink sees every event" test_sink_sees_every_event;
          tc "jsonl sink parses back" test_jsonl_sink_wellformed;
          tc "chrome sink parses back" test_chrome_sink_wellformed;
        ] );
      ( "metrics",
        [
          tc "snapshot deterministic across identical runs"
            test_metrics_deterministic;
          tc "labelled series" test_metrics_labels;
          tc "openmetrics escaping of hostile labels + EOF framing"
            test_prometheus_escaping;
          tc "golden sparse-bucket histogram exposition"
            test_histogram_golden_exposition;
          tc "non-positive observations clamp to le=\"1\""
            test_observe_non_positive;
          tc "openmetrics name sanitization" test_prometheus_name_sanitization;
        ] );
      ( "profile",
        [ tc "names real functions, cycles reconcile" test_profile_names_functions ] );
    ]
