(* Sharded campaign engine tests: static partitioning, byte-identical
   merge at every worker count, crash-and-respawn convergence under real
   SIGKILLs (including two workers racing on respawn and a whole-tree
   kill with a torn shard tail), the heartbeat watchdog on a hung
   worker, jobs-mismatch rejection on resume, and graceful degradation
   when the respawn budget is exhausted. *)

module Build = Hb_runtime.Build
module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Json = Hb_obs.Json
module Journal = Hb_recover.Journal
module Campaign = Hb_fault.Campaign
module Partition = Hb_shard.Partition
module Merge = Hb_shard.Merge
module Supervisor = Hb_shard.Supervisor
module Shard = Hb_shard.Shard

(* ---- fixtures ---------------------------------------------------------- *)

(* Real pointer traffic, sized so one campaign run takes long enough
   that a test can SIGKILL/SIGSTOP a worker mid-slice. *)
let chunky_src =
  {|
int main() {
  int *cells[32];
  int i;
  int k;
  int sum;
  for (i = 0; i < 32; i++) {
    cells[i] = (int*)malloc(16);
    cells[i][0] = i * 3;
    cells[i][1] = i;
  }
  sum = 0;
  k = 0;
  for (i = 0; i < 6000; i++) {
    sum = sum + cells[k][0] + cells[k][1];
    k = k + 1;
    if (k == 32) { k = 0; }
  }
  print_int(sum);
  return 0;
}
|}

let maker () =
  let image, globals = Build.compile ~mode:Codegen.Hardbound chunky_src in
  let config = Build.config_for Codegen.Hardbound in
  fun () -> Machine.create ~config ~globals image

let campaign_cfg ~runs =
  { Campaign.default with Campaign.label = "shard-test"; runs; seed = 11 }

let report_string r = Json.to_string_pretty (Campaign.to_json r)

let temp_base () =
  let p = Filename.temp_file "hb_shard_test" ".jsonl" in
  Sys.remove p;
  p

let remove_if_exists p = if Sys.file_exists p then Sys.remove p

let cleanup ~base ~jobs =
  remove_if_exists base;
  List.iter
    (fun shard -> remove_if_exists (Partition.shard_path ~base ~shard))
    (List.init jobs (fun k -> k))

let scfg ?(jobs = 2) ?(max_worker_restarts = 3) ?(heartbeat_timeout_s = 60.)
    () =
  { Supervisor.default with
    Supervisor.jobs;
    max_worker_restarts;
    heartbeat_timeout_s }

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  end

(* tolerant concurrent read: parse what parses, skip torn lines *)
let parsed_records path =
  List.filter_map
    (fun l -> match Json.of_string l with j -> Some j | exception _ -> None)
    (read_lines path)

let run_record_count ~base ~jobs =
  List.fold_left
    (fun acc shard ->
      let recs = parsed_records (Partition.shard_path ~base ~shard) in
      acc
      + List.length
          (List.filter (fun j -> Journal.record_type j = Some "run") recs))
    0
    (List.init jobs (fun k -> k))

(* (pid, completed) of the last heartbeat in one shard journal *)
let last_heartbeat path =
  List.fold_left
    (fun acc j ->
      if Journal.is_heartbeat j then
        match
          ( Option.bind (Json.member "pid" j) Json.to_int,
            Option.bind (Json.member "completed" j) Json.to_int )
        with
        | Some pid, Some completed -> Some (pid, completed)
        | _ -> acc
      else acc)
    None (parsed_records path)

(* Fork a saboteur process: poll the shard journals for worker
   heartbeats and deliver [signal] to the current worker of [count]
   distinct shards (at most once per shard — a respawned worker is left
   alone) once that shard acknowledges [min_completed] runs.  The parent
   SIGKILLs it when the campaign is over, so a missed window cannot
   hang the test. *)
let fork_saboteur ~base ~jobs ~signal ~count ?(min_completed = 0) () =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    let hit = Hashtbl.create 4 in
    let deadline = Unix.gettimeofday () +. 60.0 in
    let rec loop () =
      if Hashtbl.length hit >= count || Unix.gettimeofday () > deadline then
        Unix._exit 0;
      List.iter
        (fun shard ->
          if Hashtbl.length hit < count && not (Hashtbl.mem hit shard) then
            match last_heartbeat (Partition.shard_path ~base ~shard) with
            | Some (pid, completed) when completed >= min_completed ->
              (try
                 Unix.kill pid signal;
                 Hashtbl.add hit shard ()
               with Unix.Unix_error _ -> ())
            | _ -> ())
        (List.init jobs (fun k -> k));
      ignore (Unix.select [] [] [] 0.005);
      loop ()
    in
    loop ()
  | pid -> pid

let reap_saboteur pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

(* ---- partition --------------------------------------------------------- *)

let test_partition () =
  Alcotest.(check int) "owner is index mod jobs" 2 (Partition.owner ~jobs:3 5);
  Alcotest.(check bool) "select agrees with owner" true
    (Partition.select ~jobs:3 ~shard:2 5);
  (* sizes partition the run count exactly, for any remainder *)
  List.iter
    (fun (jobs, runs) ->
      let total =
        List.fold_left
          (fun acc shard -> acc + Partition.size ~jobs ~shard ~runs)
          0
          (List.init jobs (fun k -> k))
      in
      Alcotest.(check int)
        (Printf.sprintf "sizes sum to runs (%d jobs, %d runs)" jobs runs)
        runs total)
    [ (1, 7); (3, 7); (4, 8); (8, 3) ];
  (match Partition.validate ~jobs:0 with
   | () -> Alcotest.fail "jobs=0 must be rejected"
   | exception Hb_error.Hb_error _ -> ());
  (match Partition.validate ~jobs:1000 with
   | () -> Alcotest.fail "jobs=1000 must be rejected"
   | exception Hb_error.Hb_error _ -> ())

(* ---- byte-identity ----------------------------------------------------- *)

let test_jobs1_identical () =
  let mk = maker () in
  let cfg = campaign_cfg ~runs:10 in
  let serial = Campaign.run ~mk cfg in
  let sharded = Shard.run ~cfg:(scfg ~jobs:1 ()) ~mk cfg in
  Alcotest.(check string) "--jobs 1 is byte-identical to the serial runner"
    (report_string serial) (report_string sharded)

let test_jobs3_identical_and_merged_journal () =
  let mk = maker () in
  let cfg = campaign_cfg ~runs:14 in
  let serial = Campaign.run ~mk cfg in
  let base = temp_base () in
  let sharded = Shard.run ~journal:base ~cfg:(scfg ~jobs:3 ()) ~mk cfg in
  Alcotest.(check string) "--jobs 3 merge is byte-identical"
    (report_string serial) (report_string sharded);
  (* the completed sharded run left a normal done journal at the base:
     both the serial and the sharded resume paths reconstruct from it
     with zero execution *)
  let serial_resumed = Campaign.run ~resume:base ~mk cfg in
  Alcotest.(check string) "serial --resume replays the merged journal"
    (report_string serial) (report_string serial_resumed);
  let sharded_resumed =
    Shard.run ~resume:base ~cfg:(scfg ~jobs:3 ()) ~mk cfg
  in
  Alcotest.(check string) "sharded --resume replays the merged journal"
    (report_string serial) (report_string sharded_resumed);
  cleanup ~base ~jobs:3

(* ---- worker death and respawn ------------------------------------------ *)

let test_sigkill_two_workers () =
  let mk = maker () in
  let cfg = campaign_cfg ~runs:36 in
  let serial = Campaign.run ~mk cfg in
  let base = temp_base () in
  (* kill the live worker of two different shards as soon as each has a
     heartbeat: both respawn (racing through the backoff window) and
     must converge on the identical report *)
  let saboteur =
    fork_saboteur ~base ~jobs:3 ~signal:Sys.sigkill ~count:2 ()
  in
  let sharded = Shard.run ~journal:base ~cfg:(scfg ~jobs:3 ()) ~mk cfg in
  reap_saboteur saboteur;
  Alcotest.(check string)
    "two SIGKILLed workers respawn and converge byte-identically"
    (report_string serial) (report_string sharded);
  cleanup ~base ~jobs:3

let test_watchdog_hung_worker () =
  let mk = maker () in
  let cfg = campaign_cfg ~runs:24 in
  let serial = Campaign.run ~mk cfg in
  let base = temp_base () in
  (* SIGSTOP one worker late in its slice (around the final injections):
     its journal stops growing, the watchdog must SIGKILL it and the
     respawn finishes the remainder *)
  let per_shard = Partition.size ~jobs:2 ~shard:0 ~runs:24 in
  let saboteur =
    fork_saboteur ~base ~jobs:2 ~signal:Sys.sigstop ~count:1
      ~min_completed:(per_shard - 3) ()
  in
  let sharded =
    Shard.run ~journal:base
      ~cfg:(scfg ~jobs:2 ~heartbeat_timeout_s:0.6 ())
      ~mk cfg
  in
  reap_saboteur saboteur;
  Alcotest.(check string)
    "hung worker is SIGKILLed by the watchdog and its respawn converges"
    (report_string serial) (report_string sharded);
  cleanup ~base ~jobs:2

let test_kill_tree_then_resume () =
  let mk = maker () in
  let cfg = campaign_cfg ~runs:36 in
  let serial = Campaign.run ~mk cfg in
  let base = temp_base () in
  flush stdout;
  flush stderr;
  (match Unix.fork () with
   | 0 ->
     (try ignore (Shard.run ~journal:base ~cfg:(scfg ~jobs:2 ()) ~mk cfg)
      with _ -> ());
     Unix._exit 0
   | sup ->
     (* wait for some acknowledged records, then kill the whole tree:
        supervisor first, surviving workers after *)
     let deadline = Unix.gettimeofday () +. 60.0 in
     while
       run_record_count ~base ~jobs:2 < 4
       && Unix.gettimeofday () < deadline
     do
       ignore (Unix.select [] [] [] 0.01)
     done;
     Alcotest.(check bool) "campaign made progress before the kill" true
       (run_record_count ~base ~jobs:2 >= 4);
     Unix.kill sup Sys.sigkill;
     ignore (Unix.waitpid [] sup);
     let worker_pids =
       List.filter_map
         (fun shard ->
           Option.map fst
             (last_heartbeat (Partition.shard_path ~base ~shard)))
         [ 0; 1 ]
     in
     List.iter
       (fun pid ->
         try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
       worker_pids;
     (* orphaned workers are init's children, not ours: poll until the
        SIGKILLs have landed *)
     let gone pid =
       match Unix.kill pid 0 with
       | () -> false
       | exception Unix.Unix_error _ -> true
     in
     let deadline = Unix.gettimeofday () +. 10.0 in
     while
       not (List.for_all gone worker_pids)
       && Unix.gettimeofday () < deadline
     do
       ignore (Unix.select [] [] [] 0.01)
     done);
  (* worst-case shard states: one worker died between fork and its
     header write (empty file), the other left a torn tail *)
  let oc =
    open_out_gen
      [ Open_wronly; Open_creat; Open_trunc ]
      0o644
      (Partition.shard_path ~base ~shard:0)
  in
  close_out oc;
  let oc =
    open_out_gen
      [ Open_wronly; Open_creat; Open_append ]
      0o644
      (Partition.shard_path ~base ~shard:1)
  in
  output_string oc {|{"type": "run", "idx|};
  close_out oc;
  let resumed = Shard.run ~resume:base ~cfg:(scfg ~jobs:2 ()) ~mk cfg in
  Alcotest.(check string)
    "whole-tree SIGKILL + empty shard + torn tail resumes byte-identically"
    (report_string serial) (report_string resumed);
  cleanup ~base ~jobs:2

let test_heartbeat_only_torn_tail_resume () =
  let mk = maker () in
  let cfg = campaign_cfg ~runs:14 in
  let serial = Campaign.run ~mk cfg in
  let base = temp_base () in
  ignore (Shard.run ~journal:base ~cfg:(scfg ~jobs:2 ()) ~mk cfg);
  (* forge the nastiest crash shape: no merged base journal, shard 0
     missing its done marker and its last acknowledged run record, and
     the file ending in a heartbeat whose write was torn mid-line (the
     nosync channel heartbeats ride makes exactly this tail possible) *)
  Sys.remove base;
  let shard0 = Partition.shard_path ~base ~shard:0 in
  let lines = read_lines shard0 in
  let keep =
    let last_run =
      List.fold_left
        (fun (i, last) l ->
          let is_run =
            match Json.of_string l with
            | j -> Journal.record_type j = Some "run"
            | exception _ -> false
          in
          (i + 1, if is_run then i else last))
        (0, -1) lines
      |> snd
    in
    List.filteri
      (fun i l ->
        i <> last_run
        &&
        match Json.of_string l with
        | j -> Journal.record_type j <> Some "done"
        | exception _ -> true)
      lines
  in
  Alcotest.(check bool) "the doctored shard really lost records" true
    (List.length keep < List.length lines);
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 shard0
  in
  List.iter (fun l -> output_string oc (l ^ "\n")) keep;
  output_string oc {|{"type": "hb", "pid": 1, "seq": 99, "completed": 6|};
  close_out oc;
  let resumed = Shard.run ~resume:base ~cfg:(scfg ~jobs:2 ()) ~mk cfg in
  Alcotest.(check string)
    "heartbeat-only torn tail + missing done marker resumes byte-identically"
    (report_string serial) (report_string resumed);
  cleanup ~base ~jobs:2

let test_exhausted_restarts_adopted () =
  let mk = maker () in
  let cfg = campaign_cfg ~runs:24 in
  let serial = Campaign.run ~mk cfg in
  let base = temp_base () in
  (* zero respawn budget: the first SIGKILL exhausts the shard and the
     parent must adopt the slice inline (graceful degradation) *)
  let saboteur =
    fork_saboteur ~base ~jobs:2 ~signal:Sys.sigkill ~count:1 ()
  in
  let sharded =
    Shard.run ~journal:base
      ~cfg:(scfg ~jobs:2 ~max_worker_restarts:0 ())
      ~mk cfg
  in
  reap_saboteur saboteur;
  Alcotest.(check string)
    "exhausted respawn budget degrades to inline adoption, identically"
    (report_string serial) (report_string sharded);
  cleanup ~base ~jobs:2

(* ---- typed failures ---------------------------------------------------- *)

let test_jobs_mismatch_rejected () =
  let mk = maker () in
  let cfg = campaign_cfg ~runs:10 in
  let golden = Campaign.prepare ~mk cfg in
  let base = temp_base () in
  (* a shard journal pinned to jobs=2 cannot be resumed with jobs=3 *)
  let w = Journal.create (Partition.shard_path ~base ~shard:0) in
  Journal.append w
    (Journal.shard_header_json
       ~campaign:(Campaign.header_json cfg golden)
       ~shard:0 ~jobs:2);
  Journal.close w;
  (match Shard.run ~resume:base ~cfg:(scfg ~jobs:3 ()) ~mk cfg with
   | _ -> Alcotest.fail "resume with a different --jobs must be rejected"
   | exception Hb_error.Hb_error (ctx, msg) ->
     Alcotest.(check string) "typed component" "shard"
       ctx.Hb_error.component;
     Alcotest.(check bool)
       (Printf.sprintf "escalation carries a resume hint: %S" msg)
       true
       (let needle = "--resume" in
        let nh = String.length msg and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub msg i nn = needle || go (i + 1))
        in
        go 0));
  cleanup ~base ~jobs:3

let test_journal_resume_exclusive () =
  let mk = maker () in
  let cfg = campaign_cfg ~runs:4 in
  let base = temp_base () in
  (match Shard.run ~journal:base ~resume:base ~cfg:(scfg ()) ~mk cfg with
   | _ -> Alcotest.fail "--journal with --resume must be rejected"
   | exception Hb_error.Hb_error _ -> ());
  cleanup ~base ~jobs:2

(* Respawn backoff is a pure function of (config, restart ordinal):
   deterministic, monotone non-decreasing, and capped — and the cap must
   be reachable inside the restart budget, or it is dead configuration. *)
let test_backoff_schedule () =
  let scfg =
    { Supervisor.default with
      Supervisor.backoff_base_s = 0.25;
      backoff_cap_s = 2.0;
      max_worker_restarts = 8 }
  in
  (* deterministic: same inputs, same delays *)
  Alcotest.(check (list (float 1e-9)))
    "pure function of the restart ordinal"
    (Supervisor.backoff_schedule scfg)
    (Supervisor.backoff_schedule scfg);
  let sched = Supervisor.backoff_schedule scfg in
  Alcotest.(check int) "one delay per allowed restart" 8 (List.length sched);
  Alcotest.(check (list (float 1e-9)))
    "doubles from the base, then saturates at the cap"
    [ 0.25; 0.5; 1.0; 2.0; 2.0; 2.0; 2.0; 2.0 ]
    sched;
  (* monotone non-decreasing *)
  ignore
    (List.fold_left
       (fun prev d ->
         Alcotest.(check bool) "monotone" true (d >= prev);
         d)
       0. sched);
  (* the cap is reached strictly before the budget poisons the shard *)
  let hits_cap =
    List.filteri (fun i d -> i < 7 && d >= scfg.Supervisor.backoff_cap_s) sched
  in
  Alcotest.(check bool) "cap reached before the restart budget" true
    (hits_cap <> []);
  (* restart 0 (first spawn) waits nothing; negatives are clamped *)
  Alcotest.(check (float 1e-9)) "no delay before the first spawn" 0.
    (Supervisor.backoff_s scfg ~restart:0);
  Alcotest.(check (float 1e-9)) "negative ordinal clamps to zero" 0.
    (Supervisor.backoff_s scfg ~restart:(-3));
  (* the stock config's schedule, pinned: a change must be deliberate *)
  Alcotest.(check (list (float 1e-9)))
    "default schedule" [ 0.25; 0.5; 1.0 ]
    (Supervisor.backoff_schedule Supervisor.default)

let () =
  Alcotest.run "shard"
    [
      ("partition", [ Alcotest.test_case "algebra" `Quick test_partition ]);
      ( "backoff",
        [ Alcotest.test_case "deterministic-monotone-capped" `Quick
            test_backoff_schedule ] );
      ( "identity",
        [
          Alcotest.test_case "jobs-1" `Quick test_jobs1_identical;
          Alcotest.test_case "jobs-3-journal" `Quick
            test_jobs3_identical_and_merged_journal;
        ] );
      ( "fault-tolerance",
        [
          Alcotest.test_case "sigkill-two-workers" `Slow
            test_sigkill_two_workers;
          Alcotest.test_case "watchdog-hung-worker" `Slow
            test_watchdog_hung_worker;
          Alcotest.test_case "kill-tree-resume" `Slow
            test_kill_tree_then_resume;
          Alcotest.test_case "heartbeat-torn-tail-resume" `Slow
            test_heartbeat_only_torn_tail_resume;
          Alcotest.test_case "exhausted-adoption" `Slow
            test_exhausted_restarts_adopted;
        ] );
      ( "typed-failures",
        [
          Alcotest.test_case "jobs-mismatch" `Quick
            test_jobs_mismatch_rejected;
          Alcotest.test_case "journal-resume-exclusive" `Quick
            test_journal_resume_exclusive;
        ] );
    ]
