(* Fault-injection subsystem tests: the seeded PRNG, machine snapshots,
   the watchdog, the injector, and full campaign determinism. *)

module Build = Hb_runtime.Build
module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Stats = Hb_cpu.Stats
module Snapshot = Hb_cpu.Snapshot
module Json = Hb_obs.Json
module Trace = Hb_obs.Trace
module Prng = Hb_fault.Prng
module Injector = Hb_fault.Injector
module Watchdog = Hb_fault.Watchdog
module Outcome = Hb_fault.Outcome
module Campaign = Hb_fault.Campaign

(* A workload small enough for sub-second campaigns yet doing real
   pointer work: builds a linked list on the heap, sums it, prints. *)
let little_src =
  {|
int main() {
  int *cells[40];
  int i;
  int sum;
  for (i = 0; i < 40; i++) {
    cells[i] = (int*)malloc(8);
    cells[i][0] = i * 3;
    cells[i][1] = i;
  }
  sum = 0;
  for (i = 0; i < 40; i++) {
    sum = sum + cells[i][0];
  }
  print_int(sum);
  return 0;
}
|}

let maker ?max_instrs () =
  let image, globals = Build.compile ~mode:Codegen.Hardbound little_src in
  let config = Build.config_for ?max_instrs Codegen.Hardbound in
  fun () -> Machine.create ~config ~globals image

(* ---- PRNG -------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Prng.next a) (Prng.next b)
  done;
  let c = Prng.create ~seed:43 in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Prng.next a <> Prng.next c then distinct := true
  done;
  Alcotest.(check bool) "different seed diverges" true !distinct

let test_prng_ranges () =
  let r = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let n = Prng.below r 17 in
    if n < 0 || n >= 17 then Alcotest.failf "below out of range: %d" n;
    let f = Prng.float r in
    if not (f >= 0. && f < 1.) then Alcotest.failf "float out of range: %g" f
  done;
  Alcotest.check_raises "below 0 rejected"
    (Invalid_argument "Prng.below: bound must be positive") (fun () ->
      ignore (Prng.below r 0))

(* ---- snapshot ---------------------------------------------------------- *)

(* snapshot m; step; restore; step must replay identically *)
let test_snapshot_roundtrip () =
  let mk = maker () in
  let m = mk () in
  for _ = 1 to 500 do
    Machine.step m
  done;
  let snap = Snapshot.capture m in
  let digests_of m =
    List.init 200 (fun _ ->
        Machine.step m;
        Snapshot.digest m)
  in
  let first = digests_of m in
  Snapshot.restore m snap;
  Alcotest.(check bool) "restore returns to captured state" true
    (Snapshot.equal snap (Snapshot.capture m));
  let second = digests_of m in
  Alcotest.(check bool) "replay after restore is identical" true
    (first = second);
  (* a fresh machine fast-forwarded by restore also replays identically *)
  let m2 = mk () in
  Snapshot.restore m2 snap;
  let third = digests_of m2 in
  Alcotest.(check bool) "replay on a fresh machine is identical" true
    (first = third)

let test_snapshot_diff () =
  let m = maker () () in
  for _ = 1 to 100 do
    Machine.step m
  done;
  let a = Snapshot.capture m in
  m.Machine.regs.(5) <- m.Machine.regs.(5) lxor 1;
  let b = Snapshot.capture m in
  Alcotest.(check bool) "corruption breaks equality" false (Snapshot.equal a b);
  Alcotest.(check bool) "diff names the register" true
    (List.exists
       (fun line ->
         (* reg 5 value line *)
         String.length line >= 5 && String.sub line 0 5 = "reg 5")
       (Snapshot.diff a b))

(* ---- watchdog & fuel --------------------------------------------------- *)

let spin_forever_src = {|
int main() {
  int x;
  x = 1;
  while (x) { x = 2; }
  return 0;
}
|}

let test_watchdog_hang () =
  let image, globals = Build.compile ~mode:Codegen.Hardbound spin_forever_src in
  let config = Build.config_for Codegen.Hardbound in
  let m = Machine.create ~config ~globals image in
  match Watchdog.run ~limit:10_000 m with
  | Watchdog.Hang { instrs } ->
    Alcotest.(check int) "watchdog fires exactly at its budget" 10_000 instrs
  | Watchdog.Completed st ->
    Alcotest.failf "expected a hang, got %s" (Machine.status_name st)

let test_watchdog_completion_matches_run () =
  let mk = maker () in
  let m1 = mk () and m2 = mk () in
  let st1 = Machine.run m1 in
  (match Watchdog.run ~limit:max_int m2 with
  | Watchdog.Completed st2 ->
    Alcotest.(check string) "watchdogged run agrees with Machine.run"
      (Machine.status_name st1) (Machine.status_name st2)
  | Watchdog.Hang _ -> Alcotest.fail "unexpected hang");
  Alcotest.(check string) "same output" (Machine.output m1)
    (Machine.output m2)

let test_out_of_fuel () =
  let m = maker ~max_instrs:100 () () in
  match Machine.run m with
  | Machine.Out_of_fuel ->
    Alcotest.(check int) "stopped at the fuel limit" 100
      m.Machine.stats.Stats.instructions
  | st -> Alcotest.failf "expected out-of-fuel, got %s" (Machine.status_name st)

(* ---- injector ---------------------------------------------------------- *)

let test_injector_sites () =
  let mk = maker () in
  List.iter
    (fun site ->
      let m = mk () in
      Machine.attach_tracer m (Trace.create ~capacity:8 ());
      for _ = 1 to 2_000 do
        Machine.step m
      done;
      let rng = Prng.create ~seed:11 in
      let i = Injector.inject rng m site in
      Alcotest.(check bool)
        (Injector.site_name site ^ " flips state")
        true
        (i.Injector.before <> i.Injector.after);
      (* exactly one bit flipped *)
      Alcotest.(check int)
        (Injector.site_name site ^ " flips one bit")
        (i.Injector.before lxor i.Injector.after)
        (1 lsl (i.Injector.bit mod 32));
      let tracer = Option.get m.Machine.tracer in
      let seen =
        List.exists
          (fun (e : Trace.event) ->
            match e.Trace.kind with
            | Trace.Fault_injected { site = s; _ } ->
              s = Injector.site_name site
            | _ -> false)
          (Trace.recent tracer)
      in
      Alcotest.(check bool)
        (Injector.site_name site ^ " emits a trace event")
        true seen)
    Injector.all_sites

let test_spec_parsing () =
  (match Injector.parse_spec "mem,tag:0.5:9" with
  | Ok s ->
    Alcotest.(check int) "two sites" 2 (List.length s.Injector.sites);
    Alcotest.(check (float 0.)) "rate" 0.5 s.Injector.rate;
    Alcotest.(check int) "seed" 9 s.Injector.seed
  | Error e -> Alcotest.fail e);
  (match Injector.parse_spec "all:0:3" with
  | Ok s ->
    Alcotest.(check int) "all sites" 5 (List.length s.Injector.sites)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Injector.parse_spec bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ "bogus:0:1"; "mem:2.0:1"; "mem:0:x"; "mem"; ":0:1" ]

(* ---- campaign ---------------------------------------------------------- *)

let campaign_cfg =
  { Campaign.default with Campaign.label = "little"; runs = 40; seed = 5 }

let test_campaign_deterministic () =
  let mk = maker () in
  let r1 = Campaign.run ~mk campaign_cfg in
  let r2 = Campaign.run ~mk campaign_cfg in
  Alcotest.(check string) "same seed, byte-identical JSON"
    (Json.to_string_pretty (Campaign.to_json r1))
    (Json.to_string_pretty (Campaign.to_json r2));
  let r3 =
    Campaign.run ~mk { campaign_cfg with Campaign.seed = 6 }
  in
  Alcotest.(check bool) "different seed, different plan" false
    (Json.to_string (Campaign.to_json r1) = Json.to_string (Campaign.to_json r3))

let test_campaign_partition () =
  let mk = maker () in
  let r = Campaign.run ~mk campaign_cfg in
  (* every run lands in exactly one taxonomy bucket *)
  Alcotest.(check int) "one record per run" campaign_cfg.Campaign.runs
    (List.length r.Campaign.records);
  let total =
    List.fold_left
      (fun acc o -> acc + Campaign.count r None o)
      0 Outcome.all
  in
  Alcotest.(check int) "outcome counts partition the runs"
    campaign_cfg.Campaign.runs total;
  (* the JSON report bins every injection into its timeline window *)
  (match Campaign.to_json r with
   | Json.Obj kvs ->
     (match List.assoc "runs" kvs with
      | Json.List recs ->
        List.iter
          (fun rec_json ->
            match rec_json with
            | Json.Obj fields ->
              (match
                 (List.assoc "at" fields, List.assoc "window" fields)
               with
               | Json.Int at, Json.Int w ->
                 Alcotest.(check int) "window = at / window_interval"
                   (at / campaign_cfg.Campaign.window_interval)
                   w
               | _ -> Alcotest.fail "at/window are not ints")
            | _ -> Alcotest.fail "run record is not an object")
          recs
      | _ -> Alcotest.fail "runs is not a list")
   | _ -> Alcotest.fail "campaign JSON is not an object");
  List.iter
    (fun (rec_ : Campaign.record) ->
      (match rec_.Campaign.outcome with
      | Outcome.Detected ->
        if rec_.Campaign.latency = None then
          Alcotest.fail "detected run must report a latency"
      | _ ->
        if rec_.Campaign.latency <> None then
          Alcotest.fail "only detected runs report a latency");
      if
        rec_.Campaign.at_instr < 1
        || rec_.Campaign.at_instr >= r.Campaign.golden_instrs
      then Alcotest.fail "injection point outside the golden run")
    r.Campaign.records

let test_campaign_detects_bounds_faults () =
  (* with enough bounds-metadata corruptions, some must trap *)
  let mk = maker () in
  let cfg =
    { campaign_cfg with
      Campaign.runs = 60;
      sites = [ Injector.Shadow_entry; Injector.Reg_bounds ] }
  in
  let r = Campaign.run ~mk cfg in
  Alcotest.(check bool) "bounds-metadata faults are detected" true
    (Campaign.count r None Outcome.Detected > 0)

let test_campaign_slow_path_matches_fast () =
  (* temporal mode disables snapshot fast-forward; the classification must
     still be a partition and the report deterministic *)
  let image, globals = Build.compile ~mode:Codegen.Hardbound little_src in
  let config = Build.config_for ~temporal:true Codegen.Hardbound in
  let mk () = Machine.create ~config ~globals image in
  let cfg = { campaign_cfg with Campaign.runs = 10 } in
  let r1 = Campaign.run ~mk cfg in
  let r2 = Campaign.run ~mk cfg in
  Alcotest.(check string) "temporal campaign is deterministic too"
    (Json.to_string_pretty (Campaign.to_json r1))
    (Json.to_string_pretty (Campaign.to_json r2))

let test_stochastic_rate_zero_is_masked () =
  let mk = maker () in
  let spec = { Injector.sites = Injector.all_sites; rate = 0.; seed = 3 } in
  let s = Campaign.stochastic_run ~mk spec in
  Alcotest.(check int) "no injections at rate 0" 0
    (List.length s.Campaign.injections);
  Alcotest.(check string) "uninjected run is masked" "masked"
    (Outcome.name s.Campaign.s_outcome)

let () =
  Alcotest.run "fault"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "diff" `Quick test_snapshot_diff;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "hang" `Quick test_watchdog_hang;
          Alcotest.test_case "completion" `Quick
            test_watchdog_completion_matches_run;
          Alcotest.test_case "out-of-fuel" `Quick test_out_of_fuel;
        ] );
      ( "injector",
        [
          Alcotest.test_case "sites" `Quick test_injector_sites;
          Alcotest.test_case "spec" `Quick test_spec_parsing;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
          Alcotest.test_case "partition" `Quick test_campaign_partition;
          Alcotest.test_case "detects-bounds-faults" `Quick
            test_campaign_detects_bounds_faults;
          Alcotest.test_case "temporal-slow-path" `Quick
            test_campaign_slow_path_matches_fast;
          Alcotest.test_case "stochastic-rate-zero" `Quick
            test_stochastic_rate_zero_is_masked;
        ] );
    ]
