(* Harness tests: the measurement machinery behind Figures 5-7 must be
   internally consistent — segments sum to the total, records are
   transparent, printers contain every benchmark row. *)

module Run = Hb_harness.Run
module Suite = Hb_harness.Suite
module Figures = Hb_harness.Figures
module Paper_data = Hb_harness.Paper_data
module Codegen = Hb_minic.Codegen
module Encoding = Hardbound.Encoding

let treeadd = Hb_workloads.Workloads.find "treeadd"
let mst = Hb_workloads.Workloads.find "mst"

let test_decomposition_sums () =
  (* the four Figure-5 segments account exactly for the total overhead *)
  List.iter
    (fun (w : Hb_workloads.Workloads.t) ->
      let baseline = Run.measure ~mode:Codegen.Nochecks w in
      List.iter
        (fun scheme ->
          let hb = Run.measure ~scheme ~mode:Codegen.Hardbound w in
          let d = Run.decompose ~baseline hb in
          let sum =
            d.Run.seg_setbound +. d.Run.seg_meta_uops +. d.Run.seg_meta_stalls
            +. d.Run.seg_pollution
          in
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "%s/%s segments sum to total" w.name
               (Encoding.scheme_name scheme))
            d.Run.total_overhead sum)
        [ Encoding.Extern4; Encoding.Intern11 ])
    [ treeadd; mst ]

let test_cycles_identity () =
  (* cycles = uops + charged stalls, and charged stalls split per class *)
  let r = Run.measure ~scheme:Encoding.Extern4 ~mode:Codegen.Hardbound treeadd in
  Alcotest.(check int) "uops >= instructions" 1
    (if r.Run.uops >= r.Run.instructions then 1 else 0);
  Alcotest.(check int) "cycles = uops + stalls" r.Run.cycles
    (r.Run.uops + r.Run.data_stalls + r.Run.bb_stalls + r.Run.tag_stalls)

let test_uop_identity () =
  let r = Run.measure ~mode:Codegen.Hardbound treeadd in
  Alcotest.(check int) "uops = instrs + metadata uops"
    r.Run.uops
    (r.Run.instructions + r.Run.metadata_uops + r.Run.check_uops)

let test_baseline_is_clean () =
  let r = Run.measure ~mode:Codegen.Nochecks treeadd in
  Alcotest.(check int) "no setbounds" 0 r.Run.setbound_instrs;
  Alcotest.(check int) "no metadata uops" 0 r.Run.metadata_uops;
  Alcotest.(check int) "no tag stalls" 0 r.Run.tag_stalls;
  Alcotest.(check int) "no shadow stalls" 0 r.Run.bb_stalls;
  Alcotest.(check int) "no tag pages" 0 r.Run.tag_pages;
  Alcotest.(check int) "no shadow pages" 0 r.Run.shadow_pages

let test_checked_uop_monotone () =
  (* Section 5.4: charging the check uop can only slow things down *)
  let free = Run.measure ~mode:Codegen.Hardbound mst in
  let charged = Run.measure ~checked_deref_uop:true ~mode:Codegen.Hardbound mst in
  Alcotest.(check bool) "charged >= free" true
    (charged.Run.cycles >= free.Run.cycles);
  Alcotest.(check bool) "check uops counted" true
    (charged.Run.check_uops > 0)

let test_intern11_dominates () =
  (* intern-11 compresses a superset of the 4-bit codes: never more
     shadow traffic *)
  List.iter
    (fun (w : Hb_workloads.Workloads.t) ->
      let e4 = Run.measure ~scheme:Encoding.Extern4 ~mode:Codegen.Hardbound w in
      let i11 = Run.measure ~scheme:Encoding.Intern11 ~mode:Codegen.Hardbound w in
      Alcotest.(check bool)
        (w.name ^ ": intern-11 shadow traffic <= extern-4") true
        (i11.Run.ptr_loads_shadow + i11.Run.ptr_stores_shadow
         <= e4.Run.ptr_loads_shadow + e4.Run.ptr_stores_shadow))
    [ treeadd; mst ]

let test_paper_data_complete () =
  List.iter
    (fun table ->
      List.iter
        (fun b ->
          Alcotest.(check bool) ("published value for " ^ b) false
            (Float.is_nan (Paper_data.get table b)))
        Paper_data.benchmarks)
    [ Paper_data.jk_published; Paper_data.ccured_published;
      Paper_data.hardbound_extern4; Paper_data.hardbound_intern4;
      Paper_data.hardbound_intern11; Paper_data.ccured_sim_runtime ]

(* figure printers: run on a mini-suite (no software baselines, for speed)
   and check each benchmark appears with plausible values *)
let test_printers () =
  let mini =
    List.map
      (fun name ->
        let w = Hb_workloads.Workloads.find name in
        let baseline = Run.measure ~mode:Codegen.Nochecks w in
        let hb s = Run.measure ~scheme:s ~mode:Codegen.Hardbound w in
        {
          Suite.name;
          baseline;
          hb_extern4 = hb Encoding.Extern4;
          hb_intern4 = hb Encoding.Intern4;
          hb_intern11 = hb Encoding.Intern11;
          softfat = None;
          objtable = None;
        })
      [ "treeadd"; "mst" ]
  in
  let fig5 = Figures.figure5 mini in
  let fig6 = Figures.figure6 mini in
  let fig7 = Figures.figure7 mini in
  List.iter
    (fun s ->
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions treeadd" true (contains s "treeadd");
      Alcotest.(check bool) "mentions mst" true (contains s "mst"))
    [ fig5; fig6; fig7 ]

let test_temporal_report () =
  let s = Figures.temporal () in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "uaf detected" true (contains s "use-after-free");
  Alcotest.(check bool) "clean exit present" true (contains s "exited(0)")

(* ---- wall-trend analysis (advisory) ----------------------------------- *)

module Json = Hb_obs.Json

let trajectory points =
  Json.Obj
    [
      ("bench", Json.String "hb-wall-trajectory");
      ("version", Json.Int 1);
      ( "points",
        Json.List
          (List.map
             (fun (label, entries) ->
               Json.Obj
                 [
                   ("label", Json.String label);
                   ( "entries",
                     Json.List
                       (List.map
                          (fun (w, c, wall, ips, gc) ->
                            Json.Obj
                              [
                                ("workload", Json.String w);
                                ("config", Json.String c);
                                ("wall_ms", Json.Float wall);
                                ("sim_ips", Json.Float ips);
                                ("gc_major_words", Json.Int gc);
                              ])
                          entries) );
                 ])
             points) );
    ]

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* A single-point trajectory has nothing to compare: the report must say
   so in well-formed text/JSON instead of an empty table. *)
let test_trend_single_point () =
  let t = trajectory [ ("pr1", [ ("treeadd", "baseline", 10.0, 1e6, 5) ]) ] in
  let table = Suite.trend_table ~trajectory:t () in
  Alcotest.(check bool) "counts one point" true (contains table "1 point");
  Alcotest.(check bool) "says nothing to compare" true
    (contains table "nothing to compare");
  match Suite.trend ~trajectory:t () with
  | Json.Obj kvs ->
    Alcotest.(check bool) "points reported" true
      (List.assoc_opt "points" kvs = Some (Json.Int 1));
    Alcotest.(check bool) "steps list empty, not missing" true
      (List.assoc_opt "steps" kvs = Some (Json.List []))
  | _ -> Alcotest.fail "trend is not an object"

(* A zero-wall point must not drive the geomean to 0/-inf/nan: non-
   positive ratios are excluded, like the ips geomean. *)
let test_trend_zero_wall_guard () =
  let t =
    trajectory
      [
        ( "pr1",
          [
            ("treeadd", "baseline", 10.0, 1e6, 5);
            ("mst", "baseline", 8.0, 1e6, 5);
          ] );
        ( "pr2",
          [
            ("treeadd", "baseline", 0.0, 0.0, 5);
            ("mst", "baseline", 16.0, 1e6, 5);
          ] );
      ]
  in
  match Suite.trend ~trajectory:t () with
  | Json.Obj _ as doc ->
    let step =
      match Option.bind (Json.member "steps" doc) Json.to_list with
      | Some [ s ] -> s
      | _ -> Alcotest.fail "expected exactly one step"
    in
    let summary =
      match Json.member "summary" step with
      | Some s -> s
      | None -> Alcotest.fail "step has no summary"
    in
    (match Json.member "wall_ratio_geomean" summary with
     | Some (Json.Float g) ->
       Alcotest.(check bool) "geomean is finite and positive" true
         (Float.is_finite g && g > 0.0);
       (* only the surviving mst ratio (x2.0) contributes *)
       Alcotest.(check (float 1e-9)) "geomean ignores the zero-wall entry" 2.0 g
     | _ -> Alcotest.fail "no wall geomean");
    (* the zero-wall row still renders without poisoning the table *)
    let table = Suite.trend_table ~trajectory:t () in
    Alcotest.(check bool) "table renders both entries" true
      (contains table "treeadd" && contains table "mst");
    Alcotest.(check bool) "no nan leaked into the table" false
      (contains table "nan")
  | _ -> Alcotest.fail "trend is not an object"

(* A zero wall_ms in the *from* point drops the pair entirely (ratio
   undefined), leaving a well-formed report over the remaining entries. *)
let test_trend_zero_wall_prior () =
  let t =
    trajectory
      [
        ("pr1", [ ("treeadd", "baseline", 0.0, 1e6, 5) ]);
        ("pr2", [ ("treeadd", "baseline", 16.0, 1e6, 5) ]);
      ]
  in
  match Option.bind (Json.member "steps" (Suite.trend ~trajectory:t ())) Json.to_list with
  | Some [ step ] ->
    (match Option.bind (Json.member "entries" step) Json.to_list with
     | Some entries ->
       Alcotest.(check int) "undefined-ratio pair dropped" 0
         (List.length entries)
     | None -> Alcotest.fail "step has no entries")
  | _ -> Alcotest.fail "expected exactly one step"

let () =
  let tc name f = Alcotest.test_case name `Slow f in
  Alcotest.run "harness"
    [
      ( "accounting",
        [
          tc "figure-5 segments sum to total" test_decomposition_sums;
          tc "cycle identity" test_cycles_identity;
          tc "uop identity" test_uop_identity;
          tc "baseline is metadata-free" test_baseline_is_clean;
          tc "check-uop ablation monotone" test_checked_uop_monotone;
          tc "intern-11 dominates extern-4" test_intern11_dominates;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "paper data complete" `Quick test_paper_data_complete;
          tc "figure printers" test_printers;
          tc "temporal report" test_temporal_report;
        ] );
      ( "trend",
        [
          Alcotest.test_case "single-point trajectory reports cleanly" `Quick
            test_trend_single_point;
          Alcotest.test_case "zero-wall point cannot poison the geomean" `Quick
            test_trend_zero_wall_guard;
          Alcotest.test_case "zero-wall prior drops the pair" `Quick
            test_trend_zero_wall_prior;
        ] );
    ]
