(* Machine-level tests: Figure 2 of the paper executed literally, plus the
   metadata load/store path, compression behaviour, syscalls, code-pointer
   semantics (Section 6.1) and the temporal extension (Section 6.2). *)

open Hb_isa.Types
module Program = Hb_isa.Program
module Machine = Hb_cpu.Machine
module Temporal = Hb_cpu.Temporal
module Encoding = Hardbound.Encoding
module Checker = Hardbound.Checker
module Layout = Hb_mem.Layout

let link_one body =
  Program.link { funcs = [ { name = "main"; body } ]; entry = "main" }

(* Every machine this file runs also gets its stats audited: the charged
   stall classes must partition the stalls and cycles = uops + stalls. *)
let assert_invariants m =
  match Hb_cpu.Stats.check_invariants m.Machine.stats with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("stats invariants: " ^ msg)

let run ?(config = Machine.default_config) ?(globals = "") body =
  let m = Machine.create ~config ~globals (link_one body) in
  let st = Machine.run m in
  assert_invariants m;
  (st, m)

let check_status name expect st =
  let ok =
    match (expect, st) with
    | `Exit, Machine.Exited _ -> true
    | `Bounds, Machine.Bounds_violation _ -> true
    | `Non_pointer, Machine.Non_pointer_violation _ -> true
    | `Temporal, Machine.Temporal_violation _ -> true
    | `Fault, Machine.Fault _ -> true
    | _ -> false
  in
  Alcotest.(check bool)
    (name ^ ": got " ^ Machine.status_name st)
    true ok

let exit0 = [ Li (a0, 0); Syscall Sys_exit ]

(* An object at the start of the globals region, as in Figure 2 (the
   figure uses 0x1000; our globals base plays that role). *)
let obj = Layout.globals_base

let full_cfg scheme = { Machine.default_config with scheme }

let all_schemes = Encoding.all_schemes

(* Figure 2 line by line: setbound to 4 bytes; in-bounds loads pass,
   out-of-bounds loads fail, bounds survive pointer arithmetic. *)
let test_fig2 () =
  List.iter
    (fun scheme ->
      let config = full_cfg scheme in
      let pre =
        [
          Li (t0, obj);
          Setbound { dst = t1; src = t0; size = Imm 4 };
        ]
      in
      (* line 3: read address obj+2 (1 byte), check passes *)
      let st, _ =
        run ~config ~globals:"abcdefgh"
          (pre
          @ [ Load { dst = t2; base = t1; off = 2; width = W1; signed = false } ]
          @ exit0)
      in
      check_status (Encoding.scheme_name scheme ^ " fig2 line3") `Exit st;
      (* line 4: read address obj+5, check fails *)
      let st, _ =
        run ~config ~globals:"abcdefgh"
          (pre
          @ [ Load { dst = t2; base = t1; off = 5; width = W1; signed = false } ]
          @ exit0)
      in
      check_status (Encoding.scheme_name scheme ^ " fig2 line4") `Bounds st;
      (* lines 5-7: increment pointer; base/bound are copied unchanged *)
      let st, _ =
        run ~config ~globals:"abcdefgh"
          (pre
          @ [
              Alu (Add, t3, t1, Imm 1);
              Load { dst = t2; base = t3; off = 2; width = W1; signed = false };
            ]
          @ exit0)
      in
      check_status (Encoding.scheme_name scheme ^ " fig2 line6") `Exit st;
      let st, _ =
        run ~config ~globals:"abcdefgh"
          (pre
          @ [
              Alu (Add, t3, t1, Imm 1);
              Load { dst = t2; base = t3; off = 5; width = W1; signed = false };
            ]
          @ exit0)
      in
      check_status (Encoding.scheme_name scheme ^ " fig2 line7") `Bounds st)
    all_schemes

(* Dereferencing a non-pointer raises a non-pointer exception in full mode
   (Figure 3 C/D), and is silently allowed in malloc-only mode. *)
let test_non_pointer_deref () =
  let body =
    [ Li (t0, obj); Load { dst = t1; base = t0; off = 0; width = W4; signed = true } ]
    @ exit0
  in
  let st, _ = run ~config:(full_cfg Encoding.Extern4) body in
  check_status "full mode" `Non_pointer st;
  let st, _ =
    run
      ~config:{ Machine.default_config with mode = Checker.Malloc_only }
      body
  in
  check_status "malloc-only mode" `Exit st

(* Storing a bounded pointer to memory and loading it back must restore
   both the value and the metadata, for every encoding scheme, for both a
   compressible small object and an uncompressed one. *)
let test_memory_roundtrip () =
  List.iter
    (fun scheme ->
      List.iter
        (fun size ->
          let config = full_cfg scheme in
          let slot = obj + 64 in
          let body =
            [
              Li (t0, obj);
              Setbound { dst = t1; src = t0; size = Imm size };
              (* store pointer to memory, wipe register, load back *)
              Li (t2, slot);
              Setbound { dst = t2; src = t2; size = Imm 4 };
              Store { src = t1; base = t2; off = 0; width = W4 };
              Li (t1, 0);
              Load { dst = t3; base = t2; off = 0; width = W4; signed = true };
              (* metadata must allow access to last byte... *)
              Load
                { dst = t4; base = t3; off = size - 1; width = W1;
                  signed = false };
            ]
            @ exit0
          in
          let st, m = run ~config ~globals:(String.make 4096 'x') body in
          check_status
            (Printf.sprintf "%s size %d roundtrip-ok" (Encoding.scheme_name scheme)
               size)
            `Exit st;
          Alcotest.(check int) "value restored" obj
            (let _ = m in obj);
          (* ...and must reject one past the bound. *)
          let body_bad =
            [
              Li (t0, obj);
              Setbound { dst = t1; src = t0; size = Imm size };
              Li (t2, slot);
              Setbound { dst = t2; src = t2; size = Imm 4 };
              Store { src = t1; base = t2; off = 0; width = W4 };
              Load { dst = t3; base = t2; off = 0; width = W4; signed = true };
              Load
                { dst = t4; base = t3; off = size; width = W1; signed = false };
            ]
            @ exit0
          in
          let st, _ = run ~config ~globals:(String.make 4096 'x') body_bad in
          check_status
            (Printf.sprintf "%s size %d roundtrip-bad" (Encoding.scheme_name scheme)
               size)
            `Bounds st)
        (* 8: compressible everywhere; 100: uncompressed under 4-bit codes;
           4096: uncompressed everywhere except Intern11. *)
        [ 8; 100; 4096 ])
    all_schemes

(* A sub-word store into a word holding a pointer must clear its tag: the
   loaded word is then a non-pointer whose dereference fails in full mode. *)
let test_subword_store_clears_tag () =
  List.iter
    (fun scheme ->
      let config = full_cfg scheme in
      let slot = obj + 64 in
      let body =
        [
          Li (t0, obj);
          Setbound { dst = t1; src = t0; size = Imm 8 };
          Li (t2, slot);
          Setbound { dst = t2; src = t2; size = Imm 4 };
          Store { src = t1; base = t2; off = 0; width = W4 };
          (* overwrite one byte of the stored pointer *)
          Li (t3, 0);
          Store { src = t3; base = t2; off = 1; width = W1 };
          Load { dst = t4; base = t2; off = 0; width = W4; signed = true };
          Load { dst = t5; base = t4; off = 0; width = W1; signed = false };
        ]
        @ exit0
      in
      let st, _ = run ~config ~globals:(String.make 4096 'x') body in
      check_status (Encoding.scheme_name scheme ^ " subword clears tag")
        `Non_pointer st)
    all_schemes

(* Sub-word store to an *internally compressed* pointer word must first
   materialize the decoded value so the hijacked upper bits do not leak
   into data (DESIGN.md "sub-word stores"). *)
let test_subword_store_materializes_value () =
  let config = full_cfg Encoding.Intern4 in
  let slot = obj + 64 in
  let body =
    [
      Li (t0, obj);
      Setbound { dst = t1; src = t0; size = Imm 8 };
      Li (t2, slot);
      Setbound { dst = t2; src = t2; size = Imm 8 };
      Store { src = t1; base = t2; off = 0; width = W4 };
      (* clobber byte 4..7 region: write to the *other* word so the pointer
         word itself is untouched, then a byte into the pointer word *)
      Li (t3, 0xAB);
      Store { src = t3; base = t2; off = 3; width = W1 };
      (* now reload as plain data; upper byte must be 0xAB, low 3 bytes the
         original value's *)
      Load { dst = t4; base = t2; off = 0; width = W4; signed = true };
      Mov (a0, t4);
      Syscall Sys_print_int;
      Li (a0, 0);
      Syscall Sys_exit;
    ]
  in
  let st, m = run ~config ~globals:(String.make 4096 'x') body in
  check_status "materialize ok" `Exit st;
  let expected = to_signed (obj land 0xFFFFFF lor (0xAB lsl 24)) in
  Alcotest.(check string)
    "decoded value with patched byte"
    (string_of_int expected)
    (Machine.output m)

(* Section 6.1: code pointers cannot be dereferenced as data, forged
   function pointers cannot be called, genuine ones can. *)
let test_code_pointers () =
  let funcs =
    [
      { name = "main";
        body =
          [
            Licode (t0, "callee");
            Call_reg t0;
            Li (a0, 0);
            Syscall Sys_exit;
          ];
      };
      { name = "callee"; body = [ Ret ] };
    ]
  in
  let image = Program.link { funcs; entry = "main" } in
  let m = Machine.create ~config:(full_cfg Encoding.Extern4) ~globals:"" image in
  check_status "indirect call via licode" `Exit (Machine.run m);
  (* forged: integer used as code pointer *)
  let funcs_bad =
    [
      { name = "main";
        body = [ Li (t0, Program.addr_of_index 0); Call_reg t0 ] @ exit0;
      };
      { name = "callee"; body = [ Ret ] };
    ]
  in
  let image = Program.link { funcs = funcs_bad; entry = "main" } in
  let m = Machine.create ~config:(full_cfg Encoding.Extern4) ~globals:"" image in
  check_status "forged code pointer rejected" `Non_pointer (Machine.run m);
  (* dereferencing a code pointer as data fails the bounds check *)
  let funcs_deref =
    [
      { name = "main";
        body =
          [ Licode (t0, "callee");
            Load { dst = t1; base = t0; off = 0; width = W4; signed = true } ]
          @ exit0;
      };
      { name = "callee"; body = [ Ret ] };
    ]
  in
  let image = Program.link { funcs = funcs_deref; entry = "main" } in
  let m = Machine.create ~config:(full_cfg Encoding.Extern4) ~globals:"" image in
  check_status "code pointer deref rejected" `Bounds (Machine.run m)

(* The paper's escape hatch: setbound.unsafe passes all checks. *)
let test_unsafe_pointer () =
  let body =
    [
      Li (t0, obj + 4000);
      Setbound_unsafe (t1, t0);
      Load { dst = t2; base = t1; off = 0; width = W4; signed = true };
      Store { src = t2; base = t1; off = 0; width = W4 };
    ]
    @ exit0
  in
  let st, _ =
    run ~config:(full_cfg Encoding.Extern4) ~globals:(String.make 4096 'x') body
  in
  check_status "unsafe pointer" `Exit st

(* Null dereference is a machine fault, distinct from a bounds violation. *)
let test_null_fault () =
  let body =
    [ Li (t0, 0); Load { dst = t1; base = t0; off = 0; width = W4; signed = true } ]
    @ exit0
  in
  let st, _ = run ~config:Machine.baseline_config body in
  check_status "null deref" `Fault st

(* Metadata micro-op accounting: storing+loading an uncompressed pointer
   charges metadata uops; a compressed one does not. *)
let test_metadata_uops () =
  let mk size =
    [
      Li (t0, obj);
      Setbound { dst = t1; src = t0; size = Imm size };
      Li (t2, obj + 64);
      Setbound { dst = t2; src = t2; size = Imm 4 };
      Store { src = t1; base = t2; off = 0; width = W4 };
      Load { dst = t3; base = t2; off = 0; width = W4; signed = true };
    ]
    @ exit0
  in
  let _, m_small =
    run ~config:(full_cfg Encoding.Extern4) ~globals:(String.make 128 'x')
      (mk 8)
  in
  let _, m_big =
    run ~config:(full_cfg Encoding.Extern4) ~globals:(String.make 128 'x')
      (mk 1024)
  in
  Alcotest.(check int) "compressed pointer: no metadata uops" 0
    m_small.Machine.stats.Hb_cpu.Stats.metadata_uops;
  Alcotest.(check int) "uncompressed pointer: store+load metadata uops" 2
    m_big.Machine.stats.Hb_cpu.Stats.metadata_uops

(* setbound can be an operand register too. *)
let test_setbound_reg_size () =
  let body =
    [
      Li (t0, obj);
      Li (t1, 4);
      Setbound { dst = t2; src = t0; size = Reg t1 };
      Load { dst = t3; base = t2; off = 0; width = W4; signed = true };
    ]
    @ exit0
  in
  let st, _ =
    run ~config:(full_cfg Encoding.Extern4) ~globals:"abcd" body
  in
  check_status "reg-size setbound ok" `Exit st;
  let body_bad =
    [
      Li (t0, obj);
      Li (t1, 4);
      Setbound { dst = t2; src = t0; size = Reg t1 };
      Load { dst = t3; base = t2; off = 4; width = W1; signed = false };
    ]
    @ exit0
  in
  let st, _ = run ~config:(full_cfg Encoding.Extern4) ~globals:"abcd" body_bad in
  check_status "reg-size setbound bad" `Bounds st

(* setbound.narrow intersects with existing bounds: it can narrow but
   never widen, and an empty intersection makes every access fail. *)
let test_setbound_narrow () =
  let cfg = full_cfg Encoding.Extern4 in
  (* narrowing within bounds behaves like setbound *)
  let body ~first ~second ~off =
    [
      Li (t0, obj);
      Setbound { dst = t1; src = t0; size = Imm first };
      Alu (Add, t1, t1, Imm 4);
      Setbound_narrow { dst = t2; src = t1; size = Imm second };
      Load { dst = t3; base = t2; off; width = W1; signed = false };
    ]
    @ exit0
  in
  let st, _ =
    run ~config:cfg ~globals:(String.make 64 'x')
      (body ~first:16 ~second:4 ~off:3)
  in
  check_status "narrowed access in bounds" `Exit st;
  let st, _ =
    run ~config:cfg ~globals:(String.make 64 'x')
      (body ~first:16 ~second:4 ~off:4)
  in
  check_status "narrowed bound enforced" `Bounds st;
  (* attempting to WIDEN: bound stays clipped to the original *)
  let st, _ =
    run ~config:cfg ~globals:(String.make 64 'x')
      (body ~first:8 ~second:100 ~off:3)
  in
  check_status "widening clipped (in old bound)" `Exit st;
  let st, _ =
    run ~config:cfg ~globals:(String.make 64 'x')
      (body ~first:8 ~second:100 ~off:4)
  in
  check_status "widening clipped (past old bound)" `Bounds st;
  (* on a non-pointer it behaves like raw setbound *)
  let st, _ =
    run ~config:cfg ~globals:(String.make 64 'x')
      ([
         Li (t0, obj);
         Setbound_narrow { dst = t1; src = t0; size = Imm 4 };
         Load { dst = t2; base = t1; off = 3; width = W1; signed = false };
       ]
      @ exit0)
  in
  check_status "narrow on non-pointer seeds bounds" `Exit st

(* readbase/readbound extract metadata as plain values. *)
let test_readbase_readbound () =
  let body =
    [
      Li (t0, obj);
      Setbound { dst = t1; src = t0; size = Imm 12 };
      Readbase (a0, t1);
      Syscall Sys_print_int;
      Li (a0, 32);
      Syscall Sys_print_char;
      Readbound (a0, t1);
      Syscall Sys_print_int;
      Li (a0, 0);
      Syscall Sys_exit;
    ]
  in
  let st, m = run ~config:(full_cfg Encoding.Extern4) ~globals:"x" body in
  check_status "readbase ok" `Exit st;
  Alcotest.(check string) "base and bound"
    (Printf.sprintf "%d %d" obj (obj + 12))
    (Machine.output m)

(* Temporal extension: use-after-free and uninitialized reads detected. *)
let test_temporal () =
  let config =
    { (full_cfg Encoding.Extern4) with temporal = true; mode = Checker.Off }
  in
  let heap = Layout.heap_base in
  let alloc =
    [ Li (a0, heap); Li (a1, 16); Syscall Sys_mark_alloc ]
  in
  (* write then read: fine *)
  let ok_body =
    alloc
    @ [
        Li (t0, heap);
        Li (t1, 42);
        Store { src = t1; base = t0; off = 0; width = W4 };
        Load { dst = t2; base = t0; off = 0; width = W4; signed = true };
      ]
    @ exit0
  in
  let st, _ = run ~config ok_body in
  check_status "temporal ok" `Exit st;
  (* read before any write: uninitialized *)
  let uninit =
    alloc
    @ [ Li (t0, heap);
        Load { dst = t2; base = t0; off = 0; width = W4; signed = true } ]
    @ exit0
  in
  let st, _ = run ~config uninit in
  check_status "uninitialized read" `Temporal st;
  (* free then read: use-after-free *)
  let uaf =
    alloc
    @ [
        Li (t0, heap);
        Li (t1, 42);
        Store { src = t1; base = t0; off = 0; width = W4 };
        Li (a0, heap);
        Li (a1, 16);
        Syscall Sys_mark_free;
        Load { dst = t2; base = t0; off = 0; width = W4; signed = true };
      ]
    @ exit0
  in
  let st, _ = run ~config uaf in
  check_status "use after free" `Temporal st

(* Property: the machine's 32-bit ALU agrees with a reference model built
   on OCaml arithmetic (wraparound, signedness, shift masking). *)
let prop_alu_reference =
  let dummy =
    Machine.create ~config:Machine.baseline_config ~globals:""
      (link_one [ Ret ])
  in
  let reference op a b =
    let sa = to_signed a and sb = to_signed b in
    match op with
    | Add -> mask32 (a + b)
    | Sub -> mask32 (a - b)
    | Mul -> mask32 (sa * sb)
    | Div -> mask32 (sa / sb)
    | Rem -> mask32 (sa mod sb)
    | And -> a land b
    | Or -> a lor b
    | Xor -> a lxor b
    | Shl -> mask32 (a lsl (b land 31))
    | Shr -> a lsr (b land 31)
    | Sar -> mask32 (sa asr (b land 31))
    | Slt -> if sa < sb then 1 else 0
    | Sle -> if sa <= sb then 1 else 0
    | Seq -> if a = b then 1 else 0
    | Sne -> if a <> b then 1 else 0
    | Sgt -> if sa > sb then 1 else 0
    | Sge -> if sa >= sb then 1 else 0
    | Sltu -> if a < b then 1 else 0
  in
  QCheck.Test.make ~name:"ALU agrees with reference model" ~count:3000
    QCheck.(
      triple
        (oneofl
           [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Sar; Slt;
             Sle; Seq; Sne; Sgt; Sge; Sltu ])
        (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF))
    (fun (op, a, b) ->
      let b = if (op = Div || op = Rem) && b = 0 then 1 else b in
      Machine.alu_eval dummy op a b = reference op a b)

(* Stats invariants on real compiled workloads: the charged stall
   attribution must account for every stall cycle under every protection
   mode, including the tripwire's tag-space accesses. *)
let test_stats_invariants_workload () =
  let src = {|
int main() {
  int *a;
  int i;
  int s;
  a = (int*)malloc(64 * sizeof(int));
  s = 0;
  for (i = 0; i < 64; i++) { a[i] = i; }
  for (i = 0; i < 64; i++) { s = s + a[i]; }
  free((char*)a);
  return s - 2016;
}
|}
  in
  let audit name (st, (m : Machine.t)) =
    check_status name `Exit st;
    (match Hb_cpu.Stats.check_invariants m.Machine.stats with
     | Ok () -> ()
     | Error msg -> Alcotest.fail (name ^ ": " ^ msg));
    Alcotest.(check bool) (name ^ ": ran") true
      (m.Machine.stats.Hb_cpu.Stats.instructions > 0)
  in
  let mode = Hb_minic.Codegen.Hardbound in
  List.iter
    (fun scheme ->
      audit
        ("hardbound " ^ Encoding.scheme_name scheme)
        (Hb_runtime.Build.run ~scheme ~mode src))
    all_schemes;
  audit "baseline" (Hb_runtime.Build.run ~mode:Hb_minic.Codegen.Nochecks src);
  audit "tripwire"
    (Hb_runtime.Build.run ~tripwire:true ~mode:Hb_minic.Codegen.Nochecks src);
  audit "checked-deref-uop"
    (Hb_runtime.Build.run ~checked_deref_uop:true ~mode src)

(* Output syscalls and arithmetic sanity: compute and print. *)
let test_arith_and_output () =
  let body =
    [
      Li (t0, 6);
      Li (t1, 7);
      Alu (Mul, a0, t0, Reg t1);
      Syscall Sys_print_int;
      Li (a0, 10);
      Syscall Sys_print_char;
      Li (t0, -17);
      Li (t1, 5);
      Alu (Div, a0, t0, Reg t1);
      Syscall Sys_print_int;
      Li (a0, 0);
      Syscall Sys_exit;
    ]
  in
  let st, m = run ~config:Machine.baseline_config body in
  check_status "arith ok" `Exit st;
  Alcotest.(check string) "output" "42\n-3" (Machine.output m)

let test_float_ops () =
  let body =
    [
      Li (t0, 9);
      Cvt_f_of_i (t1, t0);
      Fsqrt (t2, t1);
      Cvt_i_of_f (a0, t2);
      Syscall Sys_print_int;
      Li (a0, 0);
      Syscall Sys_exit;
    ]
  in
  let st, m = run ~config:Machine.baseline_config body in
  check_status "float ok" `Exit st;
  Alcotest.(check string) "sqrt 9 = 3" "3" (Machine.output m)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cpu"
    [
      ( "machine",
        [
          tc "figure-2 semantics, all encodings" test_fig2;
          tc "non-pointer dereference" test_non_pointer_deref;
          tc "pointer memory round-trip" test_memory_roundtrip;
          tc "sub-word store clears tag" test_subword_store_clears_tag;
          tc "sub-word store materializes value"
            test_subword_store_materializes_value;
          tc "code pointer semantics" test_code_pointers;
          tc "unsafe escape hatch" test_unsafe_pointer;
          tc "null fault" test_null_fault;
          tc "metadata uop accounting" test_metadata_uops;
          tc "setbound with register size" test_setbound_reg_size;
          tc "setbound.narrow intersection" test_setbound_narrow;
          tc "readbase/readbound" test_readbase_readbound;
          tc "temporal extension" test_temporal;
          tc "stats invariants on workloads" test_stats_invariants_workload;
          tc "arithmetic and output" test_arith_and_output;
          tc "float operations" test_float_ops;
          QCheck_alcotest.to_alcotest prop_alu_reference;
        ] );
    ]
