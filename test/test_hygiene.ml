(* Determinism hygiene gate.

   Everything under lib/ is on (or reachable from) the simulation path,
   and the fault-injection campaigns promise byte-identical reports from
   a given seed.  That promise dies the moment any module reaches for
   ambient entropy, so this test greps every lib/ source for the stdlib's
   entropy points.  All randomness must flow through the one seeded PRNG,
   [Hb_fault.Prng]. *)

let lib_root = "../lib"

(* substrings forbidden in lib/ sources (checked outside comments) *)
let forbidden =
  [
    "Random.";         (* incl. Random.self_init — unseeded global state *)
    "Unix.time";
    "Unix.gettimeofday";
    "Sys.time";
  ]

(* The one sanctioned wall-clock reader: [Hb_obs.Clock] wraps the OS
   monotonic clock for the host observability plane (span profiling,
   progress ETAs) and the campaign deadline.  Nothing it reads may feed
   the injection plan or any simulated state — wall time flows only
   through the explicitly host-varying channels (span dumps, hb_host_*
   gauges, /progress, the advisory wall trajectory).  Keep the entire
   raw-clock surface confined to this file. *)
let exempt path = Filename.basename path = "clock.ml"

(* Modules allowed to consume [Hb_obs.Clock] — the host plane (fleet
   telemetry included: run wall latencies and event timestamps are
   host-varying by definition), the campaign deadline, and the shard
   supervisor (heartbeat watchdog and respawn backoff are wall-clock
   decisions about host processes; none of them feed the injection plan
   or any simulated state).  Everything else in lib/ must stay
   clock-free so a new wall-clock reader has to show up here, in
   review. *)
let clock_consumers =
  [
    "host.ml"; "progress.ml"; "deadline.ml"; "supervisor.ml"; "fleet.ml";
    (* the daemon's backoff gates and watchdog kill-afters are wall-clock
       decisions about host worker processes, exactly like the shard
       supervisor's; job reports stay deterministic *)
    "daemon.ml";
    (* queue replay re-applies a journaled requeue's backoff delay from
       restart time — the same host-scheduling decision as the daemon's
       gate, persisted; it never touches simulated state *)
    "queue.ml";
  ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Strip OCaml comments so prose mentioning [Random] doesn't trip the
   gate; string literals are kept (a "Random." in user-facing text would
   be strange enough to flag anyway). *)
let strip_comments src =
  let b = Buffer.create (String.length src) in
  let n = String.length src in
  let rec go i depth =
    if i >= n then ()
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then
      go (i + 2) (depth + 1)
    else if i + 1 < n && src.[i] = '*' && src.[i + 1] = ')' && depth > 0 then
      go (i + 2) (depth - 1)
    else begin
      if depth = 0 then Buffer.add_char b src.[i];
      go (i + 1) depth
    end
  in
  go 0 0;
  Buffer.contents b

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let rec source_files dir =
  Array.to_list (Sys.readdir dir)
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then source_files path
         else if
           Filename.check_suffix entry ".ml"
           || Filename.check_suffix entry ".mli"
         then [ path ]
         else [])

let test_no_ambient_entropy () =
  let files = source_files lib_root in
  if List.length files < 20 then
    Alcotest.failf "suspiciously few lib sources found (%d) — wrong cwd?"
      (List.length files);
  let offenders =
    List.concat_map
      (fun path ->
        if exempt path then []
        else
        let code = strip_comments (read_file path) in
        List.filter_map
          (fun needle ->
            if contains ~needle code then Some (path ^ " uses " ^ needle)
            else None)
          forbidden)
      files
  in
  match offenders with
  | [] -> ()
  | off ->
    Alcotest.failf
      "ambient entropy on the simulation path (route it through \
       Hb_fault.Prng):\n%s"
      (String.concat "\n" off)

(* The clock-confinement gate: the raw monotonic source appears only in
   the exempt [clock.ml], and [Clock.] itself only in the sanctioned
   consumer modules.  A clock leak into the simulation path would let
   host timing perturb deterministic artifacts. *)
let test_clock_confinement () =
  let files = source_files lib_root in
  let offenders =
    List.concat_map
      (fun path ->
        let base = Filename.basename path in
        let code = strip_comments (read_file path) in
        let raw =
          if (not (exempt path)) && contains ~needle:"Monotonic_clock." code
          then [ path ^ " reads the raw monotonic clock" ]
          else []
        in
        let consumer =
          if
            (not (exempt path))
            && (not (List.mem base clock_consumers))
            && contains ~needle:"Clock." code
          then [ path ^ " uses Clock. outside the sanctioned consumers" ]
          else []
        in
        raw @ consumer)
      files
  in
  (match offenders with
   | [] -> ()
   | off ->
     Alcotest.failf
       "clock leak (confine wall time to Hb_obs.Clock and its listed \
        consumers):\n%s"
       (String.concat "\n" off));
  (* the whitelist must describe reality: every listed consumer exists
     and actually reads the clock, or the list has gone stale *)
  List.iter
    (fun base ->
      match
        List.find_opt (fun p -> Filename.basename p = base) files
      with
      | None -> Alcotest.failf "clock consumer %s not found under lib/" base
      | Some p ->
        if not (contains ~needle:"Clock." (strip_comments (read_file p)))
        then Alcotest.failf "clock consumer %s no longer uses Clock." base)
    clock_consumers

(* The gate must actually be able to see the code it polices. *)
let test_scanner_sees_the_prng () =
  let files = source_files lib_root in
  Alcotest.(check bool) "lib/fault/prng.ml is in view" true
    (List.exists
       (fun p -> Filename.basename p = "prng.ml")
       files);
  (* the clock exemption must point at a real, unique file — a rename
     would silently widen the gate otherwise *)
  Alcotest.(check int) "exactly one exempt clock module" 1
    (List.length (List.filter exempt files))

let () =
  Alcotest.run "hygiene"
    [
      ( "determinism",
        [
          Alcotest.test_case "no ambient entropy in lib/" `Quick
            test_no_ambient_entropy;
          Alcotest.test_case "clock confinement" `Quick
            test_clock_confinement;
          Alcotest.test_case "scanner coverage" `Quick
            test_scanner_sees_the_prng;
        ] );
    ]
