(* Tests for the memory substrate: layout arithmetic (shadow/tag address
   computation from Section 4.1/4.2 of the paper) and the sparse paged
   physical memory with region page accounting. *)

module Layout = Hb_mem.Layout
module Physmem = Hb_mem.Physmem

let test_shadow_addresses () =
  (* base(addr) = SHADOW_SPACE_BASE + addr*2, bound interleaved after *)
  Alcotest.(check int) "shadow of 0x100000"
    (Layout.shadow_base + 0x200000)
    (Layout.shadow_addr 0x100000);
  (* consecutive words get disjoint interleaved double-words *)
  Alcotest.(check int) "next word 8 bytes later"
    (Layout.shadow_addr 0x100000 + 8)
    (Layout.shadow_addr 0x100004)

let test_tag_locations_1bit () =
  let addr0, bit0, mask0 = Layout.tag_location ~bits:1 0x100000 in
  Alcotest.(check int) "mask" 1 mask0;
  (* 8 words per tag byte *)
  let addr1, bit1, _ = Layout.tag_location ~bits:1 (0x100000 + 4) in
  Alcotest.(check int) "same byte" addr0 addr1;
  Alcotest.(check int) "next bit" (bit0 + 1) bit1;
  let addr8, bit8, _ = Layout.tag_location ~bits:1 (0x100000 + 32) in
  Alcotest.(check int) "next byte" (addr0 + 1) addr8;
  Alcotest.(check int) "bit wraps" 0 ((bit0 + 8) mod 8 + (bit8 - bit8))

let test_tag_locations_4bit () =
  let addr0, sh0, mask0 = Layout.tag_location ~bits:4 0x100000 in
  Alcotest.(check int) "mask" 0xF mask0;
  Alcotest.(check int) "even word low nibble" 0 sh0;
  let addr1, sh1, _ = Layout.tag_location ~bits:4 (0x100000 + 4) in
  Alcotest.(check int) "same byte" addr0 addr1;
  Alcotest.(check int) "odd word high nibble" 4 sh1;
  let addr2, _, _ = Layout.tag_location ~bits:4 (0x100000 + 8) in
  Alcotest.(check int) "two words per byte" (addr0 + 1) addr2

let test_tag_space_disjoint () =
  (* tag space for the whole data range stays below the shadow space *)
  let addr, _, _ = Layout.tag_location ~bits:4 (Layout.stack_top - 4) in
  Alcotest.(check bool) "tag below shadow" true (addr < Layout.shadow_base);
  Alcotest.(check bool) "tag above data" true (addr >= Layout.tag_base)

let test_regions () =
  let open Layout in
  Alcotest.(check string) "globals" "globals"
    (region_name (region_of globals_base));
  Alcotest.(check string) "heap" "heap" (region_name (region_of heap_base));
  Alcotest.(check string) "stack" "stack"
    (region_name (region_of (stack_top - 4)));
  Alcotest.(check string) "tag" "tag" (region_name (region_of tag_base));
  Alcotest.(check string) "shadow" "shadow"
    (region_name (region_of (shadow_addr heap_base)));
  Alcotest.(check bool) "all data under intern-4 region limit" true
    (stack_top <= internal_region_limit)

let test_physmem_rw () =
  let m = Physmem.create () in
  Physmem.write_u8 m 0x100000 0xAB;
  Alcotest.(check int) "u8" 0xAB (Physmem.read_u8 m 0x100000);
  Physmem.write_u16 m 0x100010 0xBEEF;
  Alcotest.(check int) "u16" 0xBEEF (Physmem.read_u16 m 0x100010);
  Physmem.write_u32 m 0x100020 0xDEADBEEF;
  Alcotest.(check int) "u32" 0xDEADBEEF (Physmem.read_u32 m 0x100020);
  (* little-endian layout *)
  Alcotest.(check int) "LE byte 0" 0xEF (Physmem.read_u8 m 0x100020);
  Alcotest.(check int) "LE byte 3" 0xDE (Physmem.read_u8 m 0x100023);
  (* zero-fill on first touch *)
  Alcotest.(check int) "untouched reads zero" 0 (Physmem.read_u32 m 0x200000)

let test_physmem_page_cross () =
  let m = Physmem.create () in
  let addr = 0x100000 + Layout.page_size - 2 in
  Physmem.write_u32 m addr 0x11223344;
  Alcotest.(check int) "crossing read" 0x11223344 (Physmem.read_u32 m addr);
  Alcotest.(check int) "byte in next page" 0x11
    (Physmem.read_u8 m (addr + 3))

let test_physmem_bits () =
  let m = Physmem.create () in
  let a = Layout.tag_base in
  Physmem.write_bits m a 0 0xF 0x9;
  Physmem.write_bits m a 4 0xF 0x5;
  Alcotest.(check int) "low nibble" 0x9 (Physmem.read_bits m a 0 0xF);
  Alcotest.(check int) "high nibble" 0x5 (Physmem.read_bits m a 4 0xF);
  Physmem.write_bits m a 0 0xF 0x0;
  Alcotest.(check int) "low cleared" 0x0 (Physmem.read_bits m a 0 0xF);
  Alcotest.(check int) "high kept" 0x5 (Physmem.read_bits m a 4 0xF)

let test_page_accounting () =
  let m = Physmem.create () in
  Alcotest.(check int) "starts empty" 0 (Physmem.pages_touched m);
  Physmem.write_u8 m Layout.heap_base 1;
  Physmem.write_u8 m (Layout.heap_base + 100) 1;
  Alcotest.(check int) "same page counted once" 1 (Physmem.pages_touched m);
  Physmem.write_u8 m (Layout.heap_base + Layout.page_size) 1;
  Alcotest.(check int) "two pages" 2 (Physmem.pages_touched m);
  Alcotest.(check int) "heap region" 2
    (Physmem.pages_touched_in m Layout.Heap);
  Physmem.write_u8 m (Layout.shadow_addr Layout.heap_base) 1;
  Alcotest.(check int) "shadow region" 1
    (Physmem.pages_touched_in m Layout.Shadow_space);
  ignore (Physmem.read_u8 m Layout.globals_base);
  Alcotest.(check int) "reads touch pages too" 1
    (Physmem.pages_touched_in m Layout.Globals)

let test_bulk_helpers () =
  let m = Physmem.create () in
  Physmem.write_bytes m 0x100000 "hello world";
  Alcotest.(check string) "string round trip" "hello world"
    (Physmem.read_string m 0x100000 11)

let test_invalid_addresses () =
  let m = Physmem.create () in
  (match Physmem.read_u8 m 0x10 with
   | exception Hb_error.Hb_error ({ Hb_error.addr = Some 0x10; _ }, _) -> ()
   | exception Hb_error.Hb_error _ ->
     Alcotest.fail "null page read should carry the faulting address"
   | _ -> Alcotest.fail "null page read should fail");
  match Physmem.write_u8 m 0x800000000 1 with
  | exception Hb_error.Hb_error _ -> ()
  | _ -> Alcotest.fail "out-of-space write should fail"

(* property: u32 write/read identity at arbitrary aligned data addresses *)
let prop_u32_roundtrip =
  QCheck.Test.make ~name:"u32 round-trip" ~count:500
    QCheck.(pair (int_bound 0xFFFFF) (int_bound 0xFFFFFFFF))
    (fun (off, v) ->
      let m = Physmem.create () in
      let addr = Hb_mem.Layout.heap_base + (off * 4) in
      Physmem.write_u32 m addr v;
      Physmem.read_u32 m addr = v)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "mem"
    [
      ( "layout",
        [
          tc "shadow addresses" test_shadow_addresses;
          tc "tag locations (1-bit)" test_tag_locations_1bit;
          tc "tag locations (4-bit)" test_tag_locations_4bit;
          tc "tag space disjoint" test_tag_space_disjoint;
          tc "regions" test_regions;
        ] );
      ( "physmem",
        [
          tc "read/write" test_physmem_rw;
          tc "page-crossing access" test_physmem_page_cross;
          tc "bit fields" test_physmem_bits;
          tc "page accounting" test_page_accounting;
          tc "bulk helpers" test_bulk_helpers;
          tc "invalid addresses" test_invalid_addresses;
          QCheck_alcotest.to_alcotest prop_u32_roundtrip;
        ] );
    ]
