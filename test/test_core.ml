(* Tests for the hardbound core library: metadata, the four compressed
   encodings (Section 4.3), the checker, and Figure 3 propagation rules. *)

module Meta = Hardbound.Meta
module Encoding = Hardbound.Encoding
module Checker = Hardbound.Checker
module Propagate = Hardbound.Propagate
open Hb_isa.Types

(* ---- Meta ---------------------------------------------------------- *)

let test_meta_basics () =
  Alcotest.(check bool) "non-pointer" false (Meta.is_pointer Meta.non_pointer);
  let m = Meta.make ~base:0x1000 ~size:4 in
  Alcotest.(check bool) "pointer" true (Meta.is_pointer m);
  Alcotest.(check int) "size" 4 (Meta.size m);
  Alcotest.(check bool) "in bounds" true (Meta.in_bounds m ~addr:0x1000 ~width:4);
  Alcotest.(check bool) "at bound" false (Meta.in_bounds m ~addr:0x1004 ~width:1);
  Alcotest.(check bool) "below base" false
    (Meta.in_bounds m ~addr:0xFFF ~width:1);
  Alcotest.(check bool) "straddles bound" false
    (Meta.in_bounds m ~addr:0x1002 ~width:4);
  Alcotest.(check bool) "unsafe is pointer" true (Meta.is_pointer Meta.unsafe);
  Alcotest.(check bool) "unsafe passes everything" true
    (Meta.in_bounds Meta.unsafe ~addr:0xDEADBEE ~width:4);
  Alcotest.(check bool) "code pointer fails data checks" false
    (Meta.in_bounds Meta.code_pointer ~addr:0x1000 ~width:4)

(* ---- Encoding: specified behaviours -------------------------------- *)

let enc = Alcotest.testable
    (fun fmt -> function
      | Encoding.Enc_non_pointer v -> Format.fprintf fmt "nonptr %x" v
      | Encoding.Enc_inline { word; tag; aux } ->
        Format.fprintf fmt "inline w=%x t=%d a=%d" word tag aux
      | Encoding.Enc_shadow { word; tag } ->
        Format.fprintf fmt "shadow w=%x t=%d" word tag)
    (=)

let test_extern4 () =
  let v = 0x100000 in
  (* sizes 4..56 multiple of 4, ptr = base: compressed with tag = size/4 *)
  List.iter
    (fun size ->
      Alcotest.check enc
        (Printf.sprintf "size %d compresses" size)
        (Encoding.Enc_inline { word = v; tag = size / 4; aux = 0 })
        (Encoding.encode Encoding.Extern4 ~value:v (Meta.make ~base:v ~size)))
    [ 4; 8; 12; 56 ];
  (* size 60 and up: tag 15 + shadow *)
  Alcotest.check enc "size 60 does not compress"
    (Encoding.Enc_shadow { word = v; tag = 15 })
    (Encoding.encode Encoding.Extern4 ~value:v (Meta.make ~base:v ~size:60));
  (* non-multiple-of-4 size *)
  Alcotest.check enc "size 6 does not compress"
    (Encoding.Enc_shadow { word = v; tag = 15 })
    (Encoding.encode Encoding.Extern4 ~value:v (Meta.make ~base:v ~size:6));
  (* interior pointer (value <> base) *)
  Alcotest.check enc "interior pointer does not compress"
    (Encoding.Enc_shadow { word = v + 4; tag = 15 })
    (Encoding.encode Encoding.Extern4 ~value:(v + 4)
       (Meta.make ~base:v ~size:8));
  (* non-pointer *)
  Alcotest.check enc "non-pointer"
    (Encoding.Enc_non_pointer 42)
    (Encoding.encode Encoding.Extern4 ~value:42 Meta.non_pointer)

let test_intern4_bit_stealing () =
  let v = 0x123458 in
  match Encoding.encode Encoding.Intern4 ~value:v (Meta.make ~base:v ~size:16) with
  | Encoding.Enc_inline { word; tag; aux } ->
    Alcotest.(check int) "tag bit" 1 tag;
    Alcotest.(check int) "aux unused" 0 aux;
    Alcotest.(check bool) "flag bit set" true (word land 0x80000000 <> 0);
    Alcotest.(check int) "size code in bits 30..27" 4 ((word lsr 27) land 0xF);
    Alcotest.(check int) "low 27 bits = value" v (word land 0x07FFFFFF);
    (match Encoding.decode Encoding.Intern4 ~word ~tag:1 ~aux:0 with
     | Encoding.Dec_inline (v', m) ->
       Alcotest.(check int) "decoded value" v v';
       Alcotest.(check bool) "decoded meta" true
         (Meta.equal m (Meta.make ~base:v ~size:16))
     | _ -> Alcotest.fail "expected inline decode")
  | _ -> Alcotest.fail "expected inline encode"

let test_intern4_region_limit () =
  (* pointers outside the lowest 128MB are not compressible *)
  let v = 0x09000000 in
  Alcotest.check enc "beyond 128MB: shadow"
    (Encoding.Enc_shadow { word = v; tag = 1 })
    (Encoding.encode Encoding.Intern4 ~value:v (Meta.make ~base:v ~size:8))

let test_intern11 () =
  let v = 0x100000 in
  (* compressible up to 4*2047 bytes *)
  Alcotest.check enc "8KB-4 object compresses"
    (Encoding.Enc_inline { word = v; tag = 1; aux = 2047 })
    (Encoding.encode Encoding.Intern11 ~value:v
       (Meta.make ~base:v ~size:(4 * 2047)));
  Alcotest.check enc "8KB object does not"
    (Encoding.Enc_shadow { word = v; tag = 1 })
    (Encoding.encode Encoding.Intern11 ~value:v
       (Meta.make ~base:v ~size:(4 * 2048)))

let test_uncompressed () =
  let v = 0x100000 in
  Alcotest.check enc "always shadow"
    (Encoding.Enc_shadow { word = v; tag = 1 })
    (Encoding.encode Encoding.Uncompressed ~value:v (Meta.make ~base:v ~size:4))

let test_tag_bits () =
  Alcotest.(check int) "extern4" 4 (Encoding.tag_bits Encoding.Extern4);
  Alcotest.(check int) "intern4" 1 (Encoding.tag_bits Encoding.Intern4);
  Alcotest.(check int) "intern11" 1 (Encoding.tag_bits Encoding.Intern11);
  Alcotest.(check int) "uncompressed" 1
    (Encoding.tag_bits Encoding.Uncompressed)

(* ---- Encoding: property tests -------------------------------------- *)

(* Arbitrary pointer metadata in the program's data regions. *)
let gen_ptr =
  QCheck.Gen.(
    let* base = map (fun v -> v * 4) (int_range 0x40000 0x1C00000) in
    let* size = int_range 1 9000 in
    let* off = int_range 0 (min size 64) in
    return (base + off, { Meta.base; bound = base + size }))

let arb_ptr = QCheck.make ~print:(fun (v, m) ->
    Printf.sprintf "value=0x%x meta=%s" v (Meta.to_string m))
    gen_ptr

let prop_roundtrip scheme =
  QCheck.Test.make
    ~name:("roundtrip " ^ Encoding.scheme_name scheme)
    ~count:2000 arb_ptr
    (fun (value, m) -> Encoding.roundtrip_exact scheme ~value m)

let prop_nonptr_roundtrip scheme =
  QCheck.Test.make
    ~name:("non-pointer roundtrip " ^ Encoding.scheme_name scheme)
    ~count:500
    QCheck.(int_bound 0xFFFFFFF)
    (fun v -> Encoding.roundtrip_exact scheme ~value:v Meta.non_pointer)

(* decode of any encode never reports a *different* metadata: if it decodes
   inline, the metadata is exactly the original. *)
let prop_inline_faithful scheme =
  QCheck.Test.make
    ~name:("inline decode faithful " ^ Encoding.scheme_name scheme)
    ~count:2000 arb_ptr
    (fun (value, m) ->
      match Encoding.encode scheme ~value m with
      | Encoding.Enc_inline { word; tag; aux } -> (
        match Encoding.decode scheme ~word ~tag ~aux with
        | Encoding.Dec_inline (v', m') -> v' = value && Meta.equal m m'
        | _ -> false)
      | _ -> true)

(* ---- Checker -------------------------------------------------------- *)

let test_checker_modes () =
  let m = Meta.make ~base:0x1000 ~size:4 in
  (* Off: nothing raises, nothing checked *)
  Alcotest.(check bool) "off" false
    (Checker.check Checker.Off m ~pc:0 ~addr:0x2000 ~value:0x2000 ~width:4
       ~is_store:false);
  (* Malloc-only: pointers checked, non-pointers allowed *)
  Alcotest.(check bool) "malloc-only non-pointer" false
    (Checker.check Checker.Malloc_only Meta.non_pointer ~pc:0 ~addr:0x2000
       ~value:0x2000 ~width:4 ~is_store:false);
  Alcotest.(check bool) "malloc-only pointer in bounds" true
    (Checker.check Checker.Malloc_only m ~pc:0 ~addr:0x1000 ~value:0x1000
       ~width:4 ~is_store:false);
  (try
     ignore
       (Checker.check Checker.Malloc_only m ~pc:0 ~addr:0x1004 ~value:0x1004
          ~width:1 ~is_store:true);
     Alcotest.fail "expected bounds violation"
   with Checker.Bounds_violation v ->
     Alcotest.(check bool) "is store" true v.Checker.is_store;
     Alcotest.(check int) "value recorded" 0x1004 v.Checker.value);
  (* Full: non-pointer deref raises *)
  (try
     ignore
       (Checker.check Checker.Full Meta.non_pointer ~pc:3 ~addr:0x2000
          ~value:0x2000 ~width:4 ~is_store:false);
     Alcotest.fail "expected non-pointer exception"
   with Checker.Non_pointer_deref v ->
     Alcotest.(check int) "pc recorded" 3 v.Checker.pc)

(* ---- Propagation (Figure 3) ----------------------------------------- *)

let test_propagation () =
  let p = Meta.make ~base:0x1000 ~size:8 in
  let q = Meta.make ~base:0x2000 ~size:8 in
  let np = Meta.non_pointer in
  (* (A) add with immediate: copy *)
  Alcotest.(check bool) "add imm copies" true
    (Meta.equal p (Propagate.binop_imm Add p));
  (* (B) reg-reg: first pointer wins *)
  Alcotest.(check bool) "ptr + nonptr" true
    (Meta.equal p (Propagate.binop Add p np));
  Alcotest.(check bool) "nonptr + ptr" true
    (Meta.equal q (Propagate.binop Add np q));
  Alcotest.(check bool) "ptr + ptr: first" true
    (Meta.equal p (Propagate.binop Add p q));
  Alcotest.(check bool) "sub propagates" true
    (Meta.equal p (Propagate.binop Sub p np));
  (* non-propagating ops clear *)
  List.iter
    (fun op ->
      Alcotest.(check bool) "cleared" true
        (Meta.equal np (Propagate.binop op p q)))
    [ Mul; Div; Rem; And; Or; Xor; Shl; Shr; Sar; Slt; Seq ];
  Alcotest.(check bool) "setbound" true
    (Meta.equal
       (Meta.make ~base:0x3000 ~size:16)
       (Propagate.setbound ~value:0x3000 ~size:16))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "hardbound-core"
    [
      ("meta", [ tc "basics" test_meta_basics ]);
      ( "encoding",
        [
          tc "extern-4 spec" test_extern4;
          tc "intern-4 bit stealing" test_intern4_bit_stealing;
          tc "intern-4 region limit" test_intern4_region_limit;
          tc "intern-11 spec" test_intern11;
          tc "uncompressed spec" test_uncompressed;
          tc "tag widths" test_tag_bits;
        ] );
      ( "encoding-properties",
        List.concat_map
          (fun s ->
            [
              qt (prop_roundtrip s);
              qt (prop_nonptr_roundtrip s);
              qt (prop_inline_faithful s);
            ])
          Encoding.all_schemes );
      ("checker", [ tc "modes" test_checker_modes ]);
      ("propagation", [ tc "figure-3 rules" test_propagation ]);
    ]
