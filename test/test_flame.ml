(* Calling-context profiler tests: the exclusive-sum accounting identity
   (per-context sums reconcile with the global Stats counters under every
   encoding), doctored-sum rejection, byte-determinism of the folded /
   speedscope / heat-map artifacts, depth clamping, snapshot-restore
   interplay with the shadow call stack, hostile frame names, metrics
   gauges, and campaign-observe read-onlyness. *)

module Json = Hb_obs.Json
module Flame = Hb_obs.Flame
module Metrics = Hb_obs.Metrics
module Machine = Hb_cpu.Machine
module Stats = Hb_cpu.Stats
module Snapshot = Hb_cpu.Snapshot
module Codegen = Hb_minic.Codegen
module Encoding = Hardbound.Encoding
module Campaign = Hb_fault.Campaign

(* Call-chain-heavy sample: recursion, a helper chain and heap traffic,
   so the shadow stack gets real depth and checks/metadata/stalls all
   land in distinct contexts. *)
let sample =
  {|
struct node { int v; struct node *l; struct node *r; };

struct node *build(int d) {
  struct node *n;
  n = (struct node *)malloc(sizeof(struct node));
  n->v = d;
  if (d <= 0) { n->l = 0; n->r = 0; return n; }
  n->l = build(d - 1);
  n->r = build(d - 1);
  return n;
}

int total(struct node *n) {
  if (n == 0) return 0;
  return n->v + total(n->l) + total(n->r);
}

int main() {
  struct node *t;
  t = build(6);
  print_int(total(t));
  return 0;
}
|}

let encodings =
  [
    ("uncompressed", Encoding.Uncompressed);
    ("extern-4", Encoding.Extern4);
    ("intern-4", Encoding.Intern4);
    ("intern-11", Encoding.Intern11);
  ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let build ~mode ~scheme () =
  Hardbound.Checker.reset_tally ();
  let image, globals = Hb_runtime.Build.compile ~mode sample in
  let config = Hb_runtime.Build.config_for ~scheme mode in
  Machine.create ~config ~globals image

let run_flame ?max_depth ~mode ~scheme () =
  let m = build ~mode ~scheme () in
  Machine.enable_flame ?max_depth m;
  (match Machine.run m with
   | Machine.Exited 0 -> ()
   | st -> Alcotest.fail (Machine.status_name st));
  m

let flame_of m =
  match Machine.flame m with
  | Some cct -> cct
  | None -> Alcotest.fail "flame not enabled"

(* ---- accounting identity --------------------------------------------- *)

(* Exclusive sums across every context must equal the global counters,
   for the unprotected baseline and every encoding. *)
let test_exclusive_sums_reconcile () =
  let check_one name ~mode ~scheme =
    let m = run_flame ~mode ~scheme () in
    let cct = flame_of m in
    Alcotest.(check bool) (name ^ ": several contexts") true
      (Flame.contexts cct > 3);
    Alcotest.(check bool) (name ^ ": real call depth") true
      (Flame.max_depth_seen cct > 3);
    (match Flame.check cct ~expect:(Stats.fields m.Machine.stats) with
     | Ok () -> ()
     | Error e -> Alcotest.fail (name ^ ": " ^ e));
    match Stats.check_invariants m.Machine.stats with
    | Ok () -> ()
    | Error e -> Alcotest.fail (name ^ ": " ^ e)
  in
  check_one "baseline" ~mode:Codegen.Nochecks ~scheme:Encoding.Uncompressed;
  List.iter
    (fun (name, scheme) ->
      check_one ("hardbound/" ^ name) ~mode:Codegen.Hardbound ~scheme)
    encodings

(* Doctored expectations and doctored node counters are both caught. *)
let test_leak_detected () =
  let m = run_flame ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  let cct = flame_of m in
  let doctored =
    List.map
      (fun (k, v) -> if k = "uops" then (k, v + 1) else (k, v))
      (Stats.fields m.Machine.stats)
  in
  (match Flame.check cct ~expect:doctored with
   | Ok () -> Alcotest.fail "doctored expectation passed Flame.check"
   | Error e ->
     Alcotest.(check bool) "error says exclusive-sum leak" true
       (contains e "exclusive-sum leak"));
  (* corrupt a context's accumulator: the identity must break *)
  (Flame.current cct).Flame.check_uops <-
    (Flame.current cct).Flame.check_uops + 7;
  match Flame.check cct ~expect:(Stats.fields m.Machine.stats) with
  | Ok () -> Alcotest.fail "doctored context passed Flame.check"
  | Error e ->
    Alcotest.(check bool) "error names the leaking key" true
      (contains e "check_uops")

(* The tree is structurally sound: parents precede children, ids are
   dense, inclusive >= exclusive, root inclusive = total cycles. *)
let test_tree_structure () =
  let m = run_flame ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  let cct = flame_of m in
  let nodes = Flame.nodes cct in
  List.iteri
    (fun i (n : Flame.node) ->
      Alcotest.(check int) "ids are dense, creation order" i n.Flame.id;
      match n.Flame.parent with
      | None -> Alcotest.(check int) "only the root has no parent" 0 n.Flame.id
      | Some p ->
        Alcotest.(check bool) "parents precede children" true
          (p.Flame.id < n.Flame.id);
        Alcotest.(check int) "depth increments" (p.Flame.depth + 1)
          n.Flame.depth)
    nodes;
  let incl = Flame.inclusive cct in
  List.iter
    (fun (n : Flame.node) ->
      Alcotest.(check bool) "inclusive >= exclusive" true
        (incl.(n.Flame.id) >= Flame.exclusive_cycles n))
    nodes;
  Alcotest.(check int) "root inclusive = total cycles"
    (Stats.cycles m.Machine.stats)
    incl.(0)

(* ---- depth clamping ---------------------------------------------------- *)

(* With a tiny cap the recursion truncates, but the identity still
   holds: clamped charges land on the cap context, nothing is lost. *)
let test_truncation_keeps_identity () =
  let m =
    run_flame ~max_depth:2 ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 ()
  in
  let cct = flame_of m in
  Alcotest.(check bool) "pushes were truncated" true
    (Flame.truncations cct > 0);
  Alcotest.(check bool) "depth clamped to the cap" true
    (List.for_all (fun (n : Flame.node) -> n.Flame.depth <= 2)
       (Flame.nodes cct));
  (match Flame.check cct ~expect:(Stats.fields m.Machine.stats) with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (* the full-depth run sees the same totals: clamping only coarsens
     attribution, never the sums *)
  let full = run_flame ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  Alcotest.(check (list (pair string int))) "clamped totals = full totals"
    (Flame.totals (flame_of full))
    (Flame.totals cct)

let test_max_depth_validation () =
  List.iter
    (fun bad ->
      match Flame.create ~max_depth:bad ~names:[| "f" |] ~root:"r" () with
      | exception Hb_error.Hb_error (_, msg) ->
        Alcotest.(check bool) "error names the depth cap" true
          (contains msg "max depth")
      | _ -> Alcotest.failf "max_depth %d accepted" bad)
    [ 0; -1 ]

(* ---- off by default / read-only ---------------------------------------- *)

let test_off_by_default_and_read_only () =
  let bare = build ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  (match Machine.run bare with
   | Machine.Exited 0 -> ()
   | st -> Alcotest.fail (Machine.status_name st));
  Alcotest.(check bool) "no flame unless enabled" true
    (Machine.flame bare = None);
  (* enabling the profiler must not perturb a single counter *)
  let profiled = run_flame ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  Alcotest.(check (list (pair string int))) "stats identical with flame on"
    (Stats.fields bare.Machine.stats)
    (Stats.fields profiled.Machine.stats)

(* ---- artifact determinism --------------------------------------------- *)

let test_artifacts_deterministic () =
  let dump scheme =
    let m = run_flame ~mode:Codegen.Hardbound ~scheme () in
    let cct = flame_of m in
    ( Flame.folded cct,
      Json.to_string_pretty (Flame.speedscope ~name:"t" cct),
      Json.to_string_pretty
        (Flame.heatmap_json ~page_size:Hb_mem.Layout.page_size
           (Machine.heat_rows m)) )
  in
  List.iter
    (fun (name, scheme) ->
      let f1, s1, h1 = dump scheme and f2, s2, h2 = dump scheme in
      Alcotest.(check string) (name ^ ": folded byte-identical") f1 f2;
      Alcotest.(check string) (name ^ ": speedscope byte-identical") s1 s2;
      Alcotest.(check string) (name ^ ": heatmap byte-identical") h1 h2;
      (* folded lines: sorted, "stack count" shaped, counts sum to the
         total cycle count *)
      let m = run_flame ~mode:Codegen.Hardbound ~scheme () in
      let lines = Flame.folded_lines (flame_of m) in
      Alcotest.(check bool) (name ^ ": folded sorted") true
        (List.sort compare lines = lines);
      Alcotest.(check int) (name ^ ": folded sums to total cycles")
        (Stats.cycles m.Machine.stats)
        (List.fold_left (fun a (_, c) -> a + c) 0 lines))
    encodings

let test_speedscope_schema () =
  let m = run_flame ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  let cct = flame_of m in
  let doc = Json.of_string (Json.to_string (Flame.speedscope cct)) in
  (match Json.member "$schema" doc with
   | Some (Json.String s) ->
     Alcotest.(check bool) "speedscope schema url" true (contains s "speedscope")
   | _ -> Alcotest.fail "missing $schema");
  let frames =
    match
      Option.bind (Json.member "shared" doc) (Json.member "frames")
      |> Fun.flip Option.bind Json.to_list
    with
    | Some l -> l
    | None -> Alcotest.fail "missing shared.frames"
  in
  Alcotest.(check int) "one frame per context" (Flame.contexts cct)
    (List.length frames)

(* ---- heat map ---------------------------------------------------------- *)

let test_heat_rows () =
  let m = run_flame ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  let rows = Machine.heat_rows m in
  Alcotest.(check bool) "pages were touched" true (rows <> []);
  let regions =
    List.sort_uniq compare (List.map (fun r -> r.Flame.h_region) rows)
  in
  List.iter
    (fun want ->
      Alcotest.(check bool) ("heat map covers " ^ want) true
        (List.mem want regions))
    [ "heap"; "tag" ];
  List.iter
    (fun (r : Flame.heat_row) ->
      Alcotest.(check int) "addr = page * page_size"
        (r.Flame.h_page * Hb_mem.Layout.page_size)
        r.Flame.h_addr;
      Alcotest.(check bool) "touched rows carry traffic" true
        (r.Flame.h_accesses > 0 || r.Flame.h_checks > 0);
      if r.Flame.h_region = "tag" || r.Flame.h_region = "shadow" then
        Alcotest.(check int) "metadata space is never bounds-checked" 0
          r.Flame.h_checks)
    rows;
  let render = Flame.heatmap_render rows in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("render shows " ^ needle) true
        (contains render needle))
    [ "heap"; "accesses" ]

(* ---- snapshot interplay ------------------------------------------------ *)

(* Capture mid-call-chain, restore: the shadow stack resets to the root
   (never materialized in the snapshot), and after running to completion
   both the flame identity and the Stats invariants still reconcile —
   restore rewound the global counters to exactly what the tree had
   accumulated. *)
let test_snapshot_restore_reconciles () =
  let m = build ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  Machine.enable_flame m;
  let cct = flame_of m in
  let steps = ref 0 in
  while Flame.depth cct < 3 && !steps < 100_000 do
    Machine.step m;
    incr steps
  done;
  Alcotest.(check bool) "captured mid-call-chain" true (Flame.depth cct >= 3);
  let snap = Snapshot.capture m in
  Snapshot.restore m snap;
  Alcotest.(check int) "restore clears the shadow stack" 0 (Flame.depth cct);
  (match Machine.run m with
   | Machine.Exited 0 -> ()
   | st -> Alcotest.fail (Machine.status_name st));
  (match Flame.check cct ~expect:(Stats.fields m.Machine.stats) with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("post-restore: " ^ e));
  match Stats.check_invariants m.Machine.stats with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("post-restore: " ^ e)

(* ---- hostile frame names ----------------------------------------------- *)

let test_hostile_names () =
  let names = [| "ev\"il\\fn"; "a;b c\nd\te" |] in
  let cct = Flame.create ~names ~root:"ro\"ot;\\" () in
  Flame.enter cct 0;
  (Flame.current cct).Flame.uops <- 10;
  (Flame.current cct).Flame.instrs <- 10;
  Flame.enter cct 1;
  (Flame.current cct).Flame.uops <- 5;
  (Flame.current cct).Flame.instrs <- 5;
  Flame.leave cct;
  Flame.leave cct;
  (* folded: the separator characters never leak into frame names *)
  List.iter
    (fun (stack, _) ->
      String.split_on_char ';' stack
      |> List.iter (fun frame ->
             Alcotest.(check bool) "no space in folded frame" false
               (String.contains frame ' '));
      Alcotest.(check bool) "no newline in folded stack" false
        (String.contains stack '\n'))
    (Flame.folded_lines cct);
  Alcotest.(check int) "folded frame count survives sanitizing" 3
    (List.fold_left
       (fun acc (stack, _) ->
         max acc (List.length (String.split_on_char ';' stack)))
       0 (Flame.folded_lines cct));
  (* speedscope: hostile names survive a JSON round-trip *)
  let doc = Json.to_string_pretty (Flame.speedscope cct) in
  match Json.of_string doc with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "speedscope did not round-trip"
  | exception Json.Parse_error e ->
    Alcotest.fail ("hostile names broke the JSON: " ^ e)

(* ---- metrics gauges ---------------------------------------------------- *)

let test_gauges () =
  let m = run_flame ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  let text = Metrics.to_prometheus (Machine.metrics m) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposes " ^ needle) true (contains text needle))
    [ "hb_flame_contexts"; "hb_flame_max_depth"; "hb_flame_truncations" ]

(* ---- campaign observe -------------------------------------------------- *)

(* The observe hook sees every record with its machine, and the campaign
   report is byte-identical with and without it. *)
let test_campaign_observe_read_only () =
  let maker () =
    let image, globals = Hb_runtime.Build.compile ~mode:Codegen.Hardbound sample in
    let config = Hb_runtime.Build.config_for Codegen.Hardbound in
    fun () ->
      let m = Machine.create ~config ~globals image in
      Machine.enable_flame m;
      m
  in
  let cfg = { Campaign.default with Campaign.label = "flame"; runs = 12; seed = 9 } in
  let plain = Campaign.run ~mk:(maker ()) cfg in
  let seen = ref 0 in
  let folded = ref [] in
  let observe (r : Campaign.record) m =
    incr seen;
    let cct = flame_of m in
    List.iter
      (fun (stack, n) ->
        folded :=
          (Hb_fault.Outcome.name r.Campaign.outcome ^ ";" ^ stack, n)
          :: !folded)
      (Flame.folded_lines cct);
    Flame.reset cct
  in
  let observed = Campaign.run ~observe ~mk:(maker ()) cfg in
  Alcotest.(check int) "observe saw every run" cfg.Campaign.runs !seen;
  Alcotest.(check bool) "per-run trees were non-empty" true (!folded <> []);
  Alcotest.(check string) "report byte-identical with observe"
    (Json.to_string_pretty (Campaign.to_json plain))
    (Json.to_string_pretty (Campaign.to_json observed))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "flame"
    [
      ( "identity",
        [
          tc "exclusive sums equal global counters for every encoding"
            test_exclusive_sums_reconcile;
          tc "doctored sums are rejected" test_leak_detected;
          tc "tree structure is sound" test_tree_structure;
        ] );
      ( "clamping",
        [
          tc "truncation keeps the identity" test_truncation_keeps_identity;
          tc "non-positive max_depth is a typed error" test_max_depth_validation;
        ] );
      ( "isolation",
        [ tc "off by default and read-only" test_off_by_default_and_read_only ]
      );
      ( "artifacts",
        [
          tc "folded/speedscope/heatmap byte-deterministic"
            test_artifacts_deterministic;
          tc "speedscope schema round-trips" test_speedscope_schema;
          tc "heat rows resolve regions and residency" test_heat_rows;
        ] );
      ( "snapshot",
        [
          tc "restore clears the stack and the identity survives"
            test_snapshot_restore_reconciles;
        ] );
      ("hostile", [ tc "hostile frame names are sanitized" test_hostile_names ]);
      ("metrics", [ tc "flame gauges exported" test_gauges ]);
      ( "campaign",
        [ tc "observe hook is read-only" test_campaign_observe_read_only ] );
    ]
