(* Fleet telemetry plane tests: the read-only contract (reports and
   merged journals byte-identical with the plane on or off), sidecar
   contents and crash-tolerant parsing, worker-labeled aggregation into
   an OpenMetrics exposition, lifecycle-event export, the unified
   cross-process Chrome trace (per-pid incarnation tracks, respawn
   instants), and the progress ticker's eta dash when the session rate
   is zero. *)

module Build = Hb_runtime.Build
module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Json = Hb_obs.Json
module Metrics = Hb_obs.Metrics
module Progress = Hb_obs.Progress
module Fleet = Hb_obs.Fleet
module Campaign = Hb_fault.Campaign
module Partition = Hb_shard.Partition
module Supervisor = Hb_shard.Supervisor
module Shard = Hb_shard.Shard

let src =
  {|
int main() {
  int *cells[8];
  int i;
  int sum;
  for (i = 0; i < 8; i++) {
    cells[i] = (int*)malloc(8);
    cells[i][0] = i * 5;
  }
  sum = 0;
  for (i = 0; i < 8; i++) { sum = sum + cells[i][0]; }
  print_int(sum);
  return 0;
}
|}

let maker () =
  let image, globals = Build.compile ~mode:Codegen.Hardbound src in
  let config = Build.config_for Codegen.Hardbound in
  fun () -> Machine.create ~config ~globals image

let campaign_cfg ~runs =
  { Campaign.default with Campaign.label = "fleet-test"; runs; seed = 23 }

let report_string r = Json.to_string_pretty (Campaign.to_json r)

let temp_base () =
  let p = Filename.temp_file "hb_fleet_test" ".jsonl" in
  Sys.remove p;
  p

let remove_if_exists p = if Sys.file_exists p then Sys.remove p

let cleanup ~base ~jobs =
  remove_if_exists base;
  List.iter
    (fun shard ->
      let p = Partition.shard_path ~base ~shard in
      remove_if_exists p;
      remove_if_exists (Fleet.sidecar_path p))
    (List.init jobs (fun k -> k))

let scfg jobs = { Supervisor.default with Supervisor.jobs }

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
  output_string oc s;
  close_out oc

(* ---- the read-only contract + real sidecar/trace artifacts ------------ *)

let test_fleet_read_only_and_artifacts () =
  let mk = maker () in
  let cfg = campaign_cfg ~runs:12 in
  let serial = Campaign.run ~mk cfg in
  let base_off = temp_base () in
  let off = Shard.run ~journal:base_off ~cfg:(scfg 2) ~mk cfg in
  let base_on = temp_base () in
  let trace = Filename.temp_file "hb_fleet_trace" ".json" in
  let on =
    Shard.run ~journal:base_on ~cfg:(scfg 2)
      ~fleet:{ Fleet.sidecars = true; chrome = Some trace }
      ~mk cfg
  in
  Alcotest.(check string) "fleet-on report is byte-identical to serial"
    (report_string serial) (report_string on);
  Alcotest.(check string) "fleet-on report is byte-identical to fleet-off"
    (report_string off) (report_string on);
  Alcotest.(check string)
    "merged base journal is byte-identical fleet on/off"
    (read_file base_off) (read_file base_on);
  (* every shard left a sidecar with at least the begin snapshot, a final
     snapshot, and one observation per executed run *)
  List.iter
    (fun shard ->
      let p = Fleet.sidecar_path (Partition.shard_path ~base:base_on ~shard) in
      Alcotest.(check bool)
        (Printf.sprintf "sidecar for shard %d exists" shard)
        true (Sys.file_exists p);
      let records =
        List.filter_map
          (fun l ->
            match Json.of_string l with j -> Some j | exception _ -> None)
          (String.split_on_char '\n' (read_file p))
      in
      let count ty =
        List.length
          (List.filter
             (fun j ->
               match Json.member "type" j with
               | Some (Json.String t) -> t = ty
               | _ -> false)
             records)
      in
      Alcotest.(check bool)
        (Printf.sprintf "shard %d: begin + final snapshots" shard)
        true (count "snap" >= 2);
      Alcotest.(check int)
        (Printf.sprintf "shard %d: one obs per executed run" shard)
        (Partition.size ~jobs:2 ~shard ~runs:12)
        (count "obs"))
    [ 0; 1 ];
  (* the unified trace: a supervisor meta track, one worker track per
     shard keyed by pid, per-run complete events, and spawn instants *)
  let tr = read_file trace in
  ignore (Json.of_string tr);
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("trace has: " ^ needle) true
        (contains_sub tr needle))
    [
      "supervisor (pid ";
      "worker 0 (pid ";
      "worker 1 (pid ";
      "spawn worker 0";
      "spawn worker 1";
      "\"run 0\"";
    ];
  (* the collector was torn down with the run: nothing leaks into a later
     in-process campaign *)
  Alcotest.(check bool) "ambient collector uninstalled after the run" false
    (Fleet.installed ());
  Sys.remove trace;
  cleanup ~base:base_off ~jobs:2;
  cleanup ~base:base_on ~jobs:2

(* ---- aggregation over synthetic sidecars ------------------------------ *)

let snap_line ~pid ~seq ~completed =
  Printf.sprintf
    {|{"type": "snap", "shard": 0, "pid": %d, "seq": %d, "t0_ns": 1000, "at_ns": 2000, "completed": %d, "rss_kb": 321, "gc": {"minor_words": 10.5, "major_words": 20.5, "minor_gcs": 3, "major_gcs": 1}, "metrics": {}, "profile": {"root": {"name": "worker-0", "start_ns": 1000, "wall_ns": -1, "children": []}}}|}
    pid seq completed

let obs_line ~outcome ~latency =
  Printf.sprintf
    {|{"type": "obs", "shard": 0, "pid": 31337, "idx": 3, "outcome": "%s", "wall_ns": 500, "latency": %s}|}
    outcome latency

let with_synthetic_fleet f =
  let s0 = Filename.temp_file "hb_fleet_side" ".fleet" in
  let s1 = Filename.temp_file "hb_fleet_side" ".fleet" in
  Sys.remove s1;
  (* shard 1 has no sidecar yet: a worker that never reached its first
     snapshot must read as "not seen", not as an error *)
  write_file s0
    (String.concat "\n"
       [
         snap_line ~pid:31337 ~seq:1 ~completed:3;
         obs_line ~outcome:"detected" ~latency:"42";
         obs_line ~outcome:"masked" ~latency:"null";
         snap_line ~pid:31337 ~seq:2 ~completed:7;
         (* a respawned incarnation, then a tail torn mid-write *)
         snap_line ~pid:31338 ~seq:1 ~completed:9;
         {|{"type": "snap", "shard": 0, "pid": 999|};
       ]);
  Fleet.install ~sidecars:[ s0; s1 ];
  Fun.protect
    ~finally:(fun () ->
      Fleet.uninstall ();
      remove_if_exists s0;
      remove_if_exists s1)
    (fun () -> f (s0, s1))

let test_aggregation_and_torn_sidecar () =
  with_synthetic_fleet @@ fun _ ->
  Fleet.event ~kind:"respawn" ~shard:1 ~pid:4242 "attempt 2";
  Fleet.event ~kind:"respawn" ~shard:1 ~pid:4243 "attempt 3";
  Fleet.event ~kind:"watchdog_kill" ~shard:0 ~pid:31337 "silent 1.0s";
  let reg = Metrics.create () in
  Fleet.export_live reg;
  let text = Metrics.to_prometheus reg in
  List.iter
    (fun line ->
      Alcotest.(check bool) ("exposition has: " ^ line) true
        (contains_sub text (line ^ "\n")))
    [
      (* the torn tail and the absent shard-1 sidecar are skipped; the
         last parsable snapshot (the respawned pid) wins *)
      {|hb_fleet_worker_completed{worker="0"} 9|};
      {|hb_fleet_worker_pid{worker="0"} 31338|};
      {|hb_fleet_worker_snaps{worker="0"} 3|};
      {|hb_fleet_worker_gc_major_words{worker="0"} 20|};
      "hb_fleet_workers 1";
      "hb_fleet_completed 9";
      (* per-worker histogram series plus the fleet rollup *)
      {|hb_fleet_run_wall_ns_count{outcome="detected",worker="0"} 1|};
      {|hb_fleet_run_wall_ns_count{outcome="detected"} 1|};
      {|hb_fleet_detect_latency_instrs_sum{outcome="detected",worker="0"} 42|};
      (* lifecycle events, per (kind, worker) and rolled up per kind *)
      {|hb_fleet_events{kind="respawn",worker="1"} 2|};
      {|hb_fleet_events{kind="respawn"} 2|};
      {|hb_fleet_events{kind="watchdog_kill",worker="0"} 1|};
    ];
  (* a null latency must not contribute a detect-latency observation *)
  Alcotest.(check bool) "masked run has no latency series" false
    (contains_sub text {|hb_fleet_detect_latency_instrs_count{outcome="masked"|});
  (* the /progress block: per-worker rows plus the event log *)
  (match Fleet.live_json () with
  | None -> Alcotest.fail "live_json must be available while installed"
  | Some j ->
    let workers =
      match Json.member "workers" j with
      | Some (Json.List l) -> l
      | _ -> Alcotest.fail "workers list missing"
    in
    Alcotest.(check int) "one row per shard" 2 (List.length workers);
    (match workers with
    | [ w0; w1 ] ->
      Alcotest.(check (option int)) "shard 0 completed" (Some 9)
        (Option.bind (Json.member "completed" w0) Json.to_int);
      Alcotest.(check bool) "shard 1 not seen yet" true
        (Json.member "seen" w1 = Some (Json.Bool false))
    | _ -> Alcotest.fail "expected exactly two worker rows");
    match Json.member "events" j with
    | Some (Json.List l) -> Alcotest.(check int) "events logged" 3 (List.length l)
    | _ -> Alcotest.fail "events list missing")

let test_export_is_noop_when_uninstalled () =
  Alcotest.(check bool) "no ambient collector" false (Fleet.installed ());
  Fleet.event ~kind:"spawn" ~shard:0 "must be dropped";
  Alcotest.(check (list unit)) "no events buffered" []
    (List.map ignore (Fleet.events ()));
  let reg = Metrics.create () in
  Fleet.export_live reg;
  Alcotest.(check bool) "no fleet series exported" false
    (contains_sub (Metrics.to_prometheus reg) "hb_fleet");
  Alcotest.(check bool) "no live json" true (Fleet.live_json () = None)

(* ---- unified trace over synthetic sidecars ---------------------------- *)

let test_unified_chrome_incarnations () =
  with_synthetic_fleet @@ fun (s0, s1) ->
  Fleet.event ~kind:"respawn" ~shard:0 ~pid:31338 "attempt 2";
  let j =
    Fleet.unified_chrome ~events:(Fleet.events ()) ~sidecars:[ s0; s1 ] ()
  in
  let text = Json.to_string_pretty j in
  (* both incarnations of shard 0 get their own pid-keyed track; the
     respawn shows as an instant event with the new pid in its args *)
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("trace has: " ^ needle) true
        (contains_sub text needle))
    [
      "worker 0 (pid 31337)";
      "worker 0 (pid 31338)";
      "respawn worker 0";
      {|"worker_pid": 31338|};
      (* the open span (wall_ns -1) renders as a zero-duration complete
         event on the unified timebase *)
      {|"name": "worker-0"|};
    ];
  Alcotest.(check bool) "torn snapshot pid never becomes a track" false
    (contains_sub text "pid 999")

(* ---- progress eta dash ------------------------------------------------ *)

let test_progress_eta_dash () =
  let p = Progress.create () in
  Progress.begin_campaign p ~label:"fleet-test" ~total:10 ~prior:4;
  (* journal-replayed records only: this session has executed nothing,
     so there is no rate to extrapolate — the ticker must print a dash,
     not a bogus finite estimate *)
  let line = Progress.render p in
  Alcotest.(check bool) ("eta dash in: " ^ line) true
    (contains_sub line ", eta -");
  Progress.start_run p 4;
  Progress.finish_run p ~outcome:"detected";
  let line = Progress.render p in
  Alcotest.(check bool) ("finite eta in: " ^ line) false
    (contains_sub line ", eta -");
  Alcotest.(check bool) ("eta present in: " ^ line) true
    (contains_sub line ", eta ")

let () =
  Alcotest.run "fleet"
    [
      ( "read-only",
        [
          Alcotest.test_case "byte-identity + sidecars + trace" `Slow
            test_fleet_read_only_and_artifacts;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "worker-labeled series + torn tail" `Quick
            test_aggregation_and_torn_sidecar;
          Alcotest.test_case "uninstalled collector is inert" `Quick
            test_export_is_noop_when_uninstalled;
        ] );
      ( "trace",
        [
          Alcotest.test_case "per-pid incarnation tracks" `Quick
            test_unified_chrome_incarnations;
        ] );
      ( "progress",
        [
          Alcotest.test_case "eta dash at zero session rate" `Quick
            test_progress_eta_dash;
        ] );
    ]
