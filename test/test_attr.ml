(* Per-PC attribution tests: the accounting identities (per-PC and
   per-function sums equal the global Stats counters under every
   encoding), golden determinism of the attribution dump, the debug-map
   line rendering, differential reports summing exactly to the global
   deltas, and the Prometheus exposition format. *)

module Json = Hb_obs.Json
module Attr = Hb_obs.Attr
module Diff = Hb_obs.Diff
module Profile = Hb_obs.Profile
module Metrics = Hb_obs.Metrics
module Machine = Hb_cpu.Machine
module Stats = Hb_cpu.Stats
module Codegen = Hb_minic.Codegen
module Encoding = Hardbound.Encoding

(* Small pointer-heavy sample workload: heap allocation, a linked
   traversal and array writes, so checks, metadata traffic and setbounds
   all fire. *)
let sample =
  {|
struct node { int v; struct node *next; };

struct node *push(struct node *head, int v) {
  struct node *n;
  n = (struct node *)malloc(sizeof(struct node));
  n->v = v;
  n->next = head;
  return n;
}

int total(struct node *head) {
  int s;
  s = 0;
  while (head != 0) { s = s + head->v; head = head->next; }
  return s;
}

int main() {
  struct node *head;
  int *a;
  int i;
  head = 0;
  a = (int *)malloc(32 * sizeof(int));
  for (i = 0; i < 32; i++) {
    a[i] = i * 3;
    head = push(head, a[i]);
  }
  print_int(total(head));
  return 0;
}
|}

let run_attr ?(profile = false) ~mode ~scheme () =
  Hardbound.Checker.reset_tally ();
  let image, globals = Hb_runtime.Build.compile ~mode sample in
  let config = Hb_runtime.Build.config_for ~scheme mode in
  let m = Machine.create ~config ~globals image in
  Machine.enable_attr ~line_base:Hb_runtime.Build.runtime_lines m;
  if profile then Machine.enable_profile m;
  (match Machine.run m with
   | Machine.Exited 0 -> ()
   | st -> Alcotest.fail (Machine.status_name st));
  m

let attr_of m =
  match Machine.attr m with
  | Some a -> a
  | None -> Alcotest.fail "attribution not enabled"

let encodings =
  [
    ("uncompressed", Encoding.Uncompressed);
    ("extern-4", Encoding.Extern4);
    ("intern-4", Encoding.Intern4);
    ("intern-11", Encoding.Intern11);
  ]

(* ---- accounting identities ------------------------------------------- *)

(* Per-PC and per-function sums must equal the global counters for every
   encoding (and the unprotected baseline), and the run must still satisfy
   the timing model's own invariants. *)
let test_sums_reconcile () =
  let check_one name ~mode ~scheme =
    let m = run_attr ~profile:true ~mode ~scheme () in
    let expect = Stats.fields m.Machine.stats in
    (match Stats.check_invariants m.Machine.stats with
     | Ok () -> ()
     | Error e -> Alcotest.fail (name ^ ": " ^ e));
    (match Attr.check (attr_of m) ~expect with
     | Ok () -> ()
     | Error e -> Alcotest.fail (name ^ ": " ^ e));
    match Machine.profile m with
    | None -> Alcotest.fail "profile not enabled"
    | Some p ->
      (match Profile.check p ~expect with
       | Ok () -> ()
       | Error e -> Alcotest.fail (name ^ ": " ^ e))
  in
  check_one "baseline" ~mode:Codegen.Nochecks ~scheme:Encoding.Uncompressed;
  List.iter
    (fun (name, scheme) ->
      check_one ("hardbound/" ^ name) ~mode:Codegen.Hardbound ~scheme)
    encodings

(* ---- golden determinism ---------------------------------------------- *)

let test_dump_deterministic () =
  let dump () =
    let m = run_attr ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
    Json.to_string_pretty
      (Attr.to_json ~meta:[ ("label", Json.String "golden") ] (attr_of m))
  in
  let a = dump () and b = dump () in
  Alcotest.(check string) "identical runs dump byte-identically" a b;
  (* and the dump parses back as a diffable document *)
  let d = Diff.of_json (Json.of_string a) in
  Alcotest.(check string) "label survives" "golden" d.Diff.label;
  Alcotest.(check bool) "has sites" true (d.Diff.sites <> [])

(* ---- debug map / line rendering -------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_line_map () =
  let m = run_attr ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  let a = attr_of m in
  let rows = Attr.rows a in
  let fns = List.map (fun (r : Attr.row) -> r.Attr.fn) rows in
  List.iter
    (fun fn ->
      Alcotest.(check bool) ("attributed rows for " ^ fn) true
        (List.mem fn fns))
    [ "main"; "push"; "total"; "malloc" ];
  (* user code carries positive user-source lines; the runtime prelude
     renders as rt.N *)
  Alcotest.(check bool) "user fn has positive source line" true
    (List.exists
       (fun (r : Attr.row) -> r.Attr.fn = "push" && r.Attr.line > 0)
       rows);
  Alcotest.(check bool) "runtime lines render as rt." true
    (List.exists
       (fun (r : Attr.row) ->
         r.Attr.fn = "malloc" && contains r.Attr.loc "malloc:rt.")
       rows);
  (* user line numbers stay within the user source, i.e. the runtime
     prelude offset was subtracted *)
  let user_lines =
    List.filter_map
      (fun (r : Attr.row) ->
        if r.Attr.fn <> "malloc" && r.Attr.line > 0 then Some r.Attr.line
        else None)
      rows
  in
  let max_line = List.fold_left max 0 user_lines in
  let source_lines =
    String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 1 sample
  in
  Alcotest.(check bool)
    (Printf.sprintf "max user line %d <= source lines %d" max_line
       source_lines)
    true
    (max_line <= source_lines);
  (* the table renders locations *)
  let table = Attr.to_table ~top:5 a in
  Alcotest.(check bool) "table shows a location" true (contains table ":")

(* ---- differential report --------------------------------------------- *)

let test_diff_totals () =
  let measure ~mode ~scheme label =
    let m = run_attr ~mode ~scheme () in
    let dump =
      Diff.of_json
        (Attr.to_json ~meta:[ ("label", Json.String label) ] (attr_of m))
    in
    (dump, m.Machine.stats)
  in
  let da, sa =
    measure ~mode:Codegen.Nochecks ~scheme:Encoding.Uncompressed "base"
  in
  let db, sb = measure ~mode:Codegen.Hardbound ~scheme:Encoding.Intern4 "hb" in
  let r = Diff.diff da db in
  Alcotest.(check string) "labels" "base->hb" (r.Diff.a_label ^ "->" ^ r.Diff.b_label);
  let t = r.Diff.total in
  (* the ranked table's total row must equal the global Stats deltas *)
  Alcotest.(check int) "cycle delta" (Stats.cycles sb - Stats.cycles sa)
    t.Diff.d_cycles;
  Alcotest.(check int) "A cycles" (Stats.cycles sa) t.Diff.a_cycles;
  Alcotest.(check int) "B cycles" (Stats.cycles sb) t.Diff.b_cycles;
  Alcotest.(check int) "instruction delta"
    (sb.Stats.instructions - sa.Stats.instructions)
    t.Diff.d_instrs;
  Alcotest.(check int) "uop delta" (sb.Stats.uops - sa.Stats.uops) t.Diff.d_uops;
  Alcotest.(check int) "metadata-uop delta"
    (sb.Stats.metadata_uops - sa.Stats.metadata_uops)
    t.Diff.d_meta;
  Alcotest.(check int) "setbound delta"
    (sb.Stats.setbound_instrs - sa.Stats.setbound_instrs)
    t.Diff.d_setbounds;
  Alcotest.(check int) "data-stall delta"
    (sb.Stats.charged_data_stalls - sa.Stats.charged_data_stalls)
    t.Diff.d_data;
  Alcotest.(check int) "tag-stall delta"
    (sb.Stats.charged_tag_stalls - sa.Stats.charged_tag_stalls)
    t.Diff.d_tag;
  Alcotest.(check int) "bb-stall delta"
    (sb.Stats.charged_bb_stalls - sa.Stats.charged_bb_stalls)
    t.Diff.d_bb;
  (* per-row deltas sum to the total row *)
  let sum f = List.fold_left (fun acc d -> acc + f d) 0 r.Diff.deltas in
  Alcotest.(check int) "rows sum to total (cycles)" t.Diff.d_cycles
    (sum (fun d -> d.Diff.d_cycles));
  Alcotest.(check int) "rows sum to total (meta)" t.Diff.d_meta
    (sum (fun d -> d.Diff.d_meta));
  (* HardBound must actually cost something here, and the table says so *)
  Alcotest.(check bool) "overhead is positive" true (t.Diff.d_cycles > 0);
  let table = Diff.to_table ~top:5 r in
  Alcotest.(check bool) "table names the decomposition" true
    (contains table "Figure-5 decomposition");
  (* a dump diffed against itself is all zeros *)
  let self = Diff.diff da da in
  Alcotest.(check int) "self-diff is zero" 0 self.Diff.total.Diff.d_cycles

let test_diff_rejects_garbage () =
  List.iter
    (fun doc ->
      match Diff.of_json (Json.of_string doc) with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail ("accepted non-dump: " ^ doc))
    [ "{}"; "{\"sites\": 3}"; "{\"sites\": [{\"fn\": \"f\"}]}" ]

(* ---- Prometheus exposition ------------------------------------------- *)

let test_prometheus_format () =
  let m = run_attr ~profile:true ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  let text = Metrics.to_prometheus (Machine.metrics m) in
  Alcotest.(check bool) "starts with a TYPE line" true
    (String.length text > 7 && String.sub text 0 7 = "# TYPE ");
  Alcotest.(check bool) "ends with EOF marker" true
    (String.length text >= 6
    && String.sub text (String.length text - 6) 6 = "# EOF\n");
  Alcotest.(check bool) "cpu cycles exposed, name sanitized" true
    (contains text "cpu_cycles ");
  Alcotest.(check bool) "labelled cache series exposed" true
    (contains text "cache_misses{cache=\"L1D\"}");
  Alcotest.(check bool) "no raw dots in metric names" false
    (contains text "cpu.cycles");
  (* determinism: a second identical run exposes byte-identical text *)
  let m2 = run_attr ~profile:true ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  Alcotest.(check string) "deterministic exposition" text
    (Metrics.to_prometheus (Machine.metrics m2))

let test_prometheus_histogram () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~labels:[ ("op", "x") ] "lat.ency" in
  List.iter (Metrics.observe h) [ 0; 1; 3; 3; 100 ];
  let text = Metrics.to_prometheus reg in
  Alcotest.(check bool) "histogram TYPE" true
    (contains text "# TYPE lat_ency histogram");
  (* buckets are cumulative: 2 at le=1 (v<=1 lands in buckets 0/1), then
     the two 3s, then the 100, and +Inf equals the count *)
  Alcotest.(check bool) "le=4 bucket cumulative" true
    (contains text "lat_ency_bucket{op=\"x\",le=\"4\"} 4");
  Alcotest.(check bool) "+Inf bucket = count" true
    (contains text "lat_ency_bucket{op=\"x\",le=\"+Inf\"} 5");
  Alcotest.(check bool) "sum series" true (contains text "lat_ency_sum{op=\"x\"} 107");
  Alcotest.(check bool) "count series" true
    (contains text "lat_ency_count{op=\"x\"} 5")

(* ---- off by default --------------------------------------------------- *)

let test_attr_off_by_default () =
  Hardbound.Checker.reset_tally ();
  let mode = Codegen.Hardbound in
  let image, globals = Hb_runtime.Build.compile ~mode sample in
  let m = Machine.create ~config:(Hb_runtime.Build.config_for mode) ~globals image in
  (match Machine.run m with
   | Machine.Exited 0 -> ()
   | st -> Alcotest.fail (Machine.status_name st));
  Alcotest.(check bool) "no attribution unless enabled" true
    (Machine.attr m = None)

(* ---- CLI row-count validation ----------------------------------------- *)

(* Both CLIs route --attr-top through this one validator: positive counts
   pass through, junk and non-positive counts are typed errors carrying a
   usage hint. *)
let test_parse_top () =
  Alcotest.(check int) "plain" 20 (Attr.parse_top "20");
  Alcotest.(check int) "whitespace tolerated" 7 (Attr.parse_top " 7 ");
  List.iter
    (fun bad ->
      match Attr.parse_top bad with
      | n -> Alcotest.failf "%S accepted as %d" bad n
      | exception Hb_error.Hb_error ((ctx : Hb_error.context), msg) ->
        Alcotest.(check string) "typed to the attr component" "attr"
          ctx.Hb_error.component;
        Alcotest.(check bool) "message names the flag" true
          (contains msg "--attr-top");
        Alcotest.(check bool) "message carries a usage hint" true
          (contains msg "positive row count"))
    [ "0"; "-3"; "xyz"; ""; "1.5" ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "attr"
    [
      ( "identities",
        [
          tc "per-PC and per-function sums equal Stats for every encoding"
            test_sums_reconcile;
        ] );
      ( "golden",
        [ tc "attribution dump is byte-deterministic" test_dump_deterministic ] );
      ( "lines",
        [ tc "debug map names functions and user lines" test_line_map ] );
      ( "diff",
        [
          tc "report totals equal global Stats deltas" test_diff_totals;
          tc "rejects documents that are not dumps" test_diff_rejects_garbage;
        ] );
      ( "prometheus",
        [
          tc "exposition format and determinism" test_prometheus_format;
          tc "cumulative histogram buckets" test_prometheus_histogram;
        ] );
      ( "defaults", [ tc "attribution off by default" test_attr_off_by_default ] );
      ( "validation",
        [ tc "--attr-top rejects junk and non-positive counts" test_parse_top ]
      );
    ]
