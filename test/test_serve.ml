(* The simulation daemon: wire protocol codec, crash-resilient job
   queue (incl. torn-tail recovery at every byte boundary), admission
   control, and the daemon itself end to end — submit over HTTP, crash
   it mid-flight, restart it on the same queue journal, and check
   exactly-once completion with reports byte-identical to a direct
   in-process campaign. *)

module Proto = Hb_serve.Proto
module Queue = Hb_serve.Queue
module Admission = Hb_serve.Admission
module Daemon = Hb_serve.Daemon
module Campaign = Hb_fault.Campaign
module Injector = Hb_fault.Injector
module Policy = Hb_recover.Policy
module Codegen = Hb_minic.Codegen
module Encoding = Hardbound.Encoding
module Build = Hb_runtime.Build
module Machine = Hb_cpu.Machine
module Json = Hb_obs.Json
module Clock = Hb_obs.Clock

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hb_serve_test_%d_%d" (Unix.getpid ()) !n)
    in
    let rec rm p =
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
        Unix.rmdir p
      end
      else Sys.remove p
    in
    if Sys.file_exists d then rm d;
    Unix.mkdir d 0o755;
    d

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---- wire protocol ---------------------------------------------------- *)

let spec_eq (a : Proto.spec) (b : Proto.spec) =
  a.Proto.tenant = b.Proto.tenant
  && a.Proto.workload = b.Proto.workload
  && a.Proto.mode = b.Proto.mode
  && a.Proto.scheme = b.Proto.scheme
  && a.Proto.runs = b.Proto.runs
  && a.Proto.seed = b.Proto.seed
  && a.Proto.sites = b.Proto.sites
  && a.Proto.checkpoints = b.Proto.checkpoints
  && a.Proto.policy = b.Proto.policy
  && a.Proto.violation_budget = b.Proto.violation_budget
  && a.Proto.deadline_s = b.Proto.deadline_s
  && a.Proto.jobs = b.Proto.jobs
  && a.Proto.chaos = b.Proto.chaos

let test_proto_roundtrip () =
  let specs =
    [
      Proto.default;
      { Proto.tenant = "ci";
        workload = "power";
        mode = Codegen.Softfat;
        scheme = Encoding.Intern11;
        runs = 40;
        seed = 99;
        sites = [ Injector.Mem_word; Injector.Tag_bits ];
        checkpoints = 4;
        policy = Policy.Null_guard;
        violation_budget = 7;
        deadline_s = Some 12.5;
        jobs = 4;
        chaos = Some (Proto.Crash 2) };
      { Proto.default with Proto.chaos = Some Proto.Hang };
    ]
  in
  List.iter
    (fun s ->
      let s' = Proto.spec_of_json (Proto.spec_to_json s) in
      Alcotest.(check bool) "canonical round-trip" true (spec_eq s s'))
    specs;
  (* the CLI's canonical mode names decode too (a journaled spec must
     replay whichever spelling the codec itself emits) *)
  List.iter
    (fun m ->
      Alcotest.(check bool)
        ("mode name round-trips: " ^ Codegen.mode_name m)
        true
        (Proto.mode_of_name (Codegen.mode_name m) = Some m))
    [ Codegen.Nochecks; Codegen.Hardbound; Codegen.Hardbound_malloc_only;
      Codegen.Softfat; Codegen.Objtable ]

let check_rejects ~what json =
  match Proto.spec_of_json (Json.of_string json) with
  | _ -> Alcotest.failf "%s accepted" what
  | exception Hb_error.Hb_error (ctx, _) ->
    (* most rejections are the codec's own; an unknown workload is typed
       by the workload table it consults *)
    Alcotest.(check bool) ("typed error for " ^ what) true
      (List.mem ctx.Hb_error.component [ "proto"; "workloads" ])

let test_proto_rejects () =
  check_rejects ~what:"unknown field (typo)"
    {|{"workload":"treeadd","runz":5}|};
  check_rejects ~what:"unknown workload" {|{"workload":"quicksort"}|};
  check_rejects ~what:"unknown mode"
    {|{"workload":"treeadd","mode":"fastmode"}|};
  check_rejects ~what:"unknown scheme"
    {|{"workload":"treeadd","scheme":"intern-5"}|};
  check_rejects ~what:"unknown policy"
    {|{"workload":"treeadd","policy":"panic"}|};
  check_rejects ~what:"bad sites"
    {|{"workload":"treeadd","sites":"mem,cache"}|};
  check_rejects ~what:"non-positive runs" {|{"workload":"treeadd","runs":0}|};
  check_rejects ~what:"jobs out of range"
    {|{"workload":"treeadd","jobs":1000}|};
  check_rejects ~what:"non-positive deadline"
    {|{"workload":"treeadd","deadline_s":-1}|};
  check_rejects ~what:"bad chaos"
    {|{"workload":"treeadd","chaos":"explode"}|};
  check_rejects ~what:"missing workload" {|{"runs":5}|}

(* ---- queue journal ---------------------------------------------------- *)

let small_spec = { Proto.default with Proto.runs = 2 }

let test_queue_replay () =
  let dir = temp_dir () in
  let q = Queue.open_ ~dir in
  let j1 = Queue.submit q ~spec:small_spec in
  let j2 =
    Queue.submit q ~spec:{ small_spec with Proto.tenant = "other" }
  in
  let j3 = Queue.submit q ~spec:small_spec in
  Queue.mark_start q j1 ~pid:111;
  Queue.mark_done q j1;
  Queue.mark_start q j2 ~pid:222;
  (* j2 is running when the daemon "dies" — no close, like a SIGKILL *)
  ignore j3;
  let q' = Queue.open_ ~dir in
  let find id = Option.get (Queue.find q' id) in
  Alcotest.(check bool) "done stays done" true
    ((find 1).Queue.state = Queue.Done);
  (* running jobs are re-admitted: pids do not survive a restart *)
  Alcotest.(check bool) "running re-admitted as queued" true
    ((find 2).Queue.state = Queue.Queued);
  Alcotest.(check int) "attempt count survives" 1 (find 2).Queue.attempts;
  Alcotest.(check string) "tenant survives" "other" (find 2).Queue.tenant;
  Alcotest.(check bool) "queued stays queued" true
    ((find 3).Queue.state = Queue.Queued);
  let queued, running, done_, poisoned, failed = Queue.counts q' in
  Alcotest.(check (list int)) "counts" [ 2; 0; 1; 0; 0 ]
    [ queued; running; done_; poisoned; failed ];
  (* the reopened writer keeps appending — and the next id is fresh *)
  let j4 = Queue.submit q' ~spec:small_spec in
  Alcotest.(check int) "ids never reused" 4 j4.Queue.id;
  Queue.close q';
  Queue.close q

let test_queue_terminal_states () =
  let dir = temp_dir () in
  let q = Queue.open_ ~dir in
  let j1 = Queue.submit q ~spec:small_spec in
  let j2 = Queue.submit q ~spec:small_spec in
  Queue.mark_start q j1 ~pid:1;
  Queue.mark_poisoned q j1 ~reason:"stuck";
  Queue.mark_start q j2 ~pid:2;
  Queue.mark_failed q j2 ~error:"unknown workload";
  let q' = Queue.open_ ~dir in
  let find id = Option.get (Queue.find q' id) in
  (match (find 1).Queue.state with
   | Queue.Poisoned r ->
     Alcotest.(check string) "poison reason survives" "stuck" r
   | _ -> Alcotest.fail "j1 not poisoned after replay");
  (match (find 2).Queue.state with
   | Queue.Failed e ->
     Alcotest.(check string) "failure survives" "unknown workload" e
   | _ -> Alcotest.fail "j2 not failed after replay");
  Alcotest.(check bool) "terminal jobs are not eligible" true
    (Queue.next_eligible q' ~now_ns:0L = None);
  Queue.close q';
  Queue.close q

(* Satellite: truncate the journal at every byte boundary of its last
   record.  Every cut must reopen cleanly: the acknowledged prefix comes
   back exactly, the torn record is dropped, and the repaired journal
   accepts new appends. *)
let test_queue_torn_tail_every_byte () =
  let dir = temp_dir () in
  let q = Queue.open_ ~dir in
  let j1 = Queue.submit q ~spec:small_spec in
  let _j2 = Queue.submit q ~spec:{ small_spec with Proto.tenant = "b" } in
  Queue.mark_start q j1 ~pid:42;
  Queue.close q;
  let journal = Filename.concat dir "queue.jsonl" in
  let full = read_file journal in
  let size = String.length full in
  (* the last record = everything after the penultimate newline *)
  let last_start =
    let rec prev i = if full.[i] = '\n' then i + 1 else prev (i - 1) in
    prev (size - 2)
  in
  Alcotest.(check bool) "several cut points" true (size - last_start > 10);
  (* every strict prefix of the record is invalid JSON and must be
     dropped; the full record missing only its newline (cut = size-1) is
     checked separately below — the reader recovers it *)
  for cut = last_start to size - 2 do
    let oc = open_out_bin journal in
    output_string oc (String.sub full 0 cut);
    close_out oc;
    let q' = Queue.open_ ~dir in
    (* the torn [start j1] record is gone: both jobs are plain queued *)
    let j1' = Option.get (Queue.find q' 1) in
    Alcotest.(check bool)
      (Printf.sprintf "cut@%d: j1 back to queued" cut)
      true
      (j1'.Queue.state = Queue.Queued && j1'.Queue.attempts = 0);
    Alcotest.(check bool)
      (Printf.sprintf "cut@%d: j2 survives" cut)
      true
      (match Queue.find q' 2 with
       | Some j -> j.Queue.state = Queue.Queued && j.Queue.tenant = "b"
       | None -> false);
    (* the repaired journal must accept (and persist) new records *)
    Queue.mark_start q' j1' ~pid:7;
    Queue.close q';
    let q'' = Queue.open_ ~dir in
    Alcotest.(check int)
      (Printf.sprintf "cut@%d: repaired tail persists" cut)
      1
      (Option.get (Queue.find q'' 1)).Queue.attempts;
    Queue.close q''
  done;
  (* a clean cut exactly before the last record is the same prefix *)
  let oc = open_out_bin journal in
  output_string oc (String.sub full 0 last_start);
  close_out oc;
  let q' = Queue.open_ ~dir in
  Alcotest.(check bool) "clean prefix cut" true
    ((Option.get (Queue.find q' 1)).Queue.state = Queue.Queued);
  Queue.close q';
  (* a complete record missing only its newline is not torn: the reader
     recovers it and the writer repair finishes the line, so j1's start
     survives and the job is re-admitted with its attempt on record *)
  let oc = open_out_bin journal in
  output_string oc (String.sub full 0 (size - 1));
  close_out oc;
  let q' = Queue.open_ ~dir in
  let j1' = Option.get (Queue.find q' 1) in
  Alcotest.(check bool) "newline-only tear: start record recovered" true
    (j1'.Queue.state = Queue.Queued && j1'.Queue.attempts = 1);
  Queue.close q'

let test_queue_fairness_and_backoff () =
  let dir = temp_dir () in
  let q = Queue.open_ ~dir in
  let spec t = { small_spec with Proto.tenant = t } in
  let _a1 = Queue.submit q ~spec:(spec "a") in
  let _a2 = Queue.submit q ~spec:(spec "a") in
  let _a3 = Queue.submit q ~spec:(spec "a") in
  let _b1 = Queue.submit q ~spec:(spec "b") in
  let take () =
    match Queue.next_eligible q ~now_ns:0L with
    | None -> Alcotest.fail "queue unexpectedly empty"
    | Some j ->
      Queue.mark_start q j ~pid:1;
      Queue.mark_done q j;
      (j.Queue.tenant, j.Queue.id)
  in
  (* round-robin: after tenant a is served once, b's waiting job goes
     ahead of a's remaining two (lets are sequenced — a bare list would
     evaluate the takes right to left) *)
  let p1 = take () in
  let p2 = take () in
  let p3 = take () in
  let p4 = take () in
  Alcotest.(check (list (pair string int)))
    "least-recently-served tenant first"
    [ ("a", 1); ("b", 4); ("a", 2); ("a", 3) ]
    [ p1; p2; p3; p4 ];
  (* backoff gate: a requeued job is invisible until its not_before *)
  let j5 = Queue.submit q ~spec:(spec "a") in
  Queue.mark_start q j5 ~pid:1;
  Queue.mark_requeue q j5 ~reason:"crash" ~not_before_ns:1_000L;
  Alcotest.(check bool) "inside backoff window: ineligible" true
    (Queue.next_eligible q ~now_ns:999L = None);
  Alcotest.(check bool) "after backoff window: eligible" true
    (match Queue.next_eligible q ~now_ns:1_000L with
     | Some j -> j.Queue.id = 5
     | None -> false);
  Alcotest.(check string) "requeue reason recorded" "crash" j5.Queue.note;
  (* the backoff gate survives a restart: the journaled delay is
     re-applied from replay time, so a crash-looping job cannot retry
     immediately against a freshly restarted daemon *)
  Queue.mark_requeue q j5 ~backoff_s:30. ~reason:"crash loop"
    ~not_before_ns:(Int64.add (Clock.now_ns ()) (Clock.ns_of_s 30.));
  Queue.close q;
  let q' = Queue.open_ ~dir in
  let j5' = Option.get (Queue.find q' 5) in
  Alcotest.(check bool) "replayed gate is in the future" true
    (j5'.Queue.not_before_ns > Clock.now_ns ());
  Alcotest.(check bool) "inside replayed backoff: ineligible" true
    (Queue.next_eligible q' ~now_ns:(Clock.now_ns ()) = None);
  Alcotest.(check bool) "past replayed backoff: eligible again" true
    (match
       Queue.next_eligible q'
         ~now_ns:(Int64.add (Clock.now_ns ()) (Clock.ns_of_s 60.))
     with
     | Some j -> j.Queue.id = 5
     | None -> false);
  Queue.close q'

(* ---- admission -------------------------------------------------------- *)

let test_admission () =
  let cfg =
    { (Admission.default ~workers:4) with
      Admission.max_queued = 3;
      max_per_tenant = 2;
      mem_soft_kb = 1000;
      mem_hard_kb = 2000 }
  in
  let admit level queued tenant_queued =
    Admission.decide cfg ~level ~queued ~tenant:"t" ~tenant_queued
  in
  Alcotest.(check bool) "admits under all bounds" true
    (admit Admission.Normal 2 1 = Admission.Admit);
  (match admit Admission.Normal 3 0 with
   | Admission.Overloaded r ->
     Alcotest.(check bool) "queue-full reason names the bound" true
       (contains ~needle:"bound 3" r)
   | Admission.Admit -> Alcotest.fail "admitted past max_queued");
  (match admit Admission.Normal 2 2 with
   | Admission.Overloaded r ->
     Alcotest.(check bool) "quota reason names the tenant" true
       (contains ~needle:{|"t"|} r)
   | Admission.Admit -> Alcotest.fail "admitted past tenant quota");
  (match admit Admission.Refuse 0 0 with
   | Admission.Overloaded _ -> ()
   | Admission.Admit -> Alcotest.fail "admitted while refusing");
  (* pressure probe: disk failure dominates, then hard/soft memory *)
  Alcotest.(check bool) "disk failure refuses" true
    (Admission.probe cfg ~rss_kb:0 ~disk_failing:true = Admission.Refuse);
  Alcotest.(check bool) "hard memory refuses" true
    (Admission.probe cfg ~rss_kb:2000 ~disk_failing:false = Admission.Refuse);
  Alcotest.(check bool) "soft memory shrinks" true
    (Admission.probe cfg ~rss_kb:1500 ~disk_failing:false = Admission.Shrink);
  Alcotest.(check bool) "no pressure is normal" true
    (Admission.probe cfg ~rss_kb:10 ~disk_failing:false = Admission.Normal);
  Alcotest.(check int) "normal pool" 4
    (Admission.workers_for cfg Admission.Normal);
  Alcotest.(check int) "shrunk pool" 2
    (Admission.workers_for cfg Admission.Shrink);
  Alcotest.(check bool) "rss readable on this host" true
    (Admission.rss_kb () > 0)

(* ---- the daemon end to end -------------------------------------------- *)

let http port ~meth ~path ?(body = "") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\n\r\n%s"
          meth path (String.length body) body
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec loop () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          loop ()
        end
      in
      (try loop () with _ -> ());
      Buffer.contents buf)

(* wait until [pred] on the queue holds, polling; campaigns take real
   wall time, so the budget is generous — the pass case returns fast *)
let await ?(timeout = 120.) ~what pred =
  let t0 = Clock.now_ns () in
  let rec go () =
    if pred () then ()
    else if Clock.elapsed_s ~t0 > timeout then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let job_state d id =
  match Queue.find (Daemon.queue d) id with
  | Some j -> j.Queue.state
  | None -> Alcotest.failf "job %d vanished" id

(* "power" is the cheapest workload in wall time; 1-2 runs keeps each
   daemon test a few seconds *)
let e2e_spec =
  { Proto.default with Proto.workload = "power"; runs = 2; seed = 11 }

let expected_report_bytes spec =
  let image, globals = Build.compile ~mode:spec.Proto.mode (Proto.source spec) in
  let config =
    Build.config_for ~scheme:spec.Proto.scheme ~temporal:false
      ~max_instrs:Build.default_fuel spec.Proto.mode
  in
  Hardbound.Checker.reset_tally ();
  let mk () = Machine.create ~config ~globals image in
  let report = Campaign.run ~mk (Proto.campaign_config spec) in
  Json.to_string_pretty (Campaign.to_json report) ^ "\n"

let quick_cfg dir =
  { (Daemon.default ~port:0 ~dir) with
    Daemon.backoff_base_s = 0.05;
    backoff_cap_s = 0.2;
    poll_interval_s = 0.02 }

let test_daemon_end_to_end () =
  let dir = temp_dir () in
  let d = Daemon.start (quick_cfg dir) in
  Fun.protect
    ~finally:(fun () -> Daemon.stop d)
    (fun () ->
      let port = Daemon.port d in
      let body = Json.to_string (Proto.spec_to_json e2e_spec) in
      let r = http port ~meth:"POST" ~path:"/jobs" ~body () in
      Alcotest.(check bool) "submit accepted (202)" true
        (contains ~needle:"202 Accepted" r);
      Alcotest.(check bool) "reply names the job" true
        (contains ~needle:{|"job": "j1"|} r);
      await ~what:"job j1 to finish" (fun () ->
          match job_state d 1 with
          | Queue.Done -> true
          | Queue.Poisoned r | Queue.Failed r ->
            Alcotest.failf "job j1 died: %s" r
          | _ -> false);
      let status = http port ~meth:"GET" ~path:"/jobs/j1" () in
      Alcotest.(check bool) "status shows done" true
        (contains ~needle:{|"state": "done"|} status);
      let report = http port ~meth:"GET" ~path:"/jobs/j1/report" () in
      let expected = expected_report_bytes e2e_spec in
      Alcotest.(check bool) "report bytes == direct campaign" true
        (contains ~needle:expected report);
      (* live planes stay up alongside the job endpoints *)
      let m = http port ~meth:"GET" ~path:"/metrics" () in
      Alcotest.(check bool) "metrics served" true
        (contains ~needle:"hb_serve_done_total 1" m);
      let p = http port ~meth:"GET" ~path:"/progress" () in
      Alcotest.(check bool) "progress served" true
        (contains ~needle:{|"daemon": "hb-serve"|} p);
      (* unknown job and not-ready report are typed, not hangs *)
      Alcotest.(check bool) "unknown job 404" true
        (contains ~needle:"404"
           (http port ~meth:"GET" ~path:"/jobs/j9" ()));
      Alcotest.(check bool) "bad spec 400" true
        (contains ~needle:"400"
           (http port ~meth:"POST" ~path:"/jobs" ~body:"{nope" ()));
      (* a Done job whose report file vanished (crash before the rename
         was directory-durable, manual deletion) is typed too — and must
         not wedge the daemon's mutex: the planes stay live after *)
      Sys.remove
        (Filename.concat (Queue.job_dir (Daemon.queue d) 1) "report.json");
      let r = http port ~meth:"GET" ~path:"/jobs/j1/report" () in
      Alcotest.(check bool) "missing report is a typed 500" true
        (contains ~needle:{|"error": "report_missing"|} r);
      Alcotest.(check bool) "daemon still answers status" true
        (contains ~needle:{|"state": "done"|}
           (http port ~meth:"GET" ~path:"/jobs/j1" ()));
      Alcotest.(check bool) "metrics still served" true
        (contains ~needle:"hb_serve_up"
           (http port ~meth:"GET" ~path:"/metrics" ())))

let test_daemon_crash_restart_exactly_once () =
  let dir = temp_dir () in
  let d = Daemon.start (quick_cfg dir) in
  let port = Daemon.port d in
  let submit seed =
    let body =
      Json.to_string (Proto.spec_to_json { e2e_spec with Proto.seed })
    in
    Alcotest.(check bool) "submit accepted" true
      (contains ~needle:"202" (http port ~meth:"POST" ~path:"/jobs" ~body ()))
  in
  submit 21;
  submit 22;
  (* let at least one worker start, then die like a SIGKILL: children
     killed, nothing journaled past the fsync'd acknowledgements *)
  await ~what:"a worker to start" (fun () ->
      List.exists
        (fun j -> match j.Queue.state with Queue.Running _ -> true | _ -> false)
        (Queue.jobs (Daemon.queue d)));
  Daemon.stop ~hard:true d;
  let d' = Daemon.start (quick_cfg dir) in
  Fun.protect
    ~finally:(fun () -> Daemon.stop d')
    (fun () ->
      await ~what:"both jobs to finish after restart" (fun () ->
          List.for_all
            (fun j -> j.Queue.state = Queue.Done)
            (Queue.jobs (Daemon.queue d')));
      let _, _, done_, poisoned, failed = Queue.counts (Daemon.queue d') in
      Alcotest.(check (list int)) "exactly once: 2 done, none lost"
        [ 2; 0; 0 ] [ done_; poisoned; failed ];
      List.iter
        (fun (id, seed) ->
          let got =
            read_file
              (Filename.concat (Queue.job_dir (Daemon.queue d') id)
                 "report.json")
          in
          Alcotest.(check bool)
            (Printf.sprintf "j%d report byte-identical after crash" id)
            true
            (got = expected_report_bytes { e2e_spec with Proto.seed }))
        [ (1, 21); (2, 22) ])

let test_daemon_chaos_crash_retry () =
  let dir = temp_dir () in
  let d = Daemon.start (quick_cfg dir) in
  Fun.protect
    ~finally:(fun () -> Daemon.stop d)
    (fun () ->
      let spec =
        { e2e_spec with Proto.runs = 1; chaos = Some (Proto.Crash 1) }
      in
      let body = Json.to_string (Proto.spec_to_json spec) in
      ignore (http (Daemon.port d) ~meth:"POST" ~path:"/jobs" ~body ());
      await ~what:"crash-once job to succeed on retry" (fun () ->
          job_state d 1 = Queue.Done);
      let j = Option.get (Queue.find (Daemon.queue d) 1) in
      Alcotest.(check int) "first attempt crashed, second ran" 2
        j.Queue.attempts)

let test_daemon_hang_poisoned () =
  let dir = temp_dir () in
  let cfg =
    { (quick_cfg dir) with
      Daemon.job_deadline_s = 0.3;
      watchdog_grace_s = 0.3;
      max_attempts = 2 }
  in
  let d = Daemon.start cfg in
  Fun.protect
    ~finally:(fun () -> Daemon.stop d)
    (fun () ->
      let spec =
        { e2e_spec with Proto.runs = 1; chaos = Some Proto.Hang }
      in
      let body = Json.to_string (Proto.spec_to_json spec) in
      ignore (http (Daemon.port d) ~meth:"POST" ~path:"/jobs" ~body ());
      await ~timeout:30. ~what:"hung job to be poisoned" (fun () ->
          match job_state d 1 with Queue.Poisoned _ -> true | _ -> false);
      let j = Option.get (Queue.find (Daemon.queue d) 1) in
      Alcotest.(check int) "watchdog spent the whole attempt budget" 2
        j.Queue.attempts;
      Alcotest.(check bool) "reason names the watchdog" true
        (contains ~needle:"watchdog" j.Queue.note);
      (* surfaced on the live plane, not just in the queue *)
      let p = http (Daemon.port d) ~meth:"GET" ~path:"/progress" () in
      Alcotest.(check bool) "poisoned visible in /progress" true
        (contains ~needle:{|"state": "poisoned"|} p))

let test_daemon_overload_typed () =
  let dir = temp_dir () in
  let cfg =
    { (quick_cfg dir) with
      Daemon.admission =
        { (Admission.default ~workers:1) with
          Admission.max_queued = 2; max_per_tenant = 2; retry_after_s = 3. };
      job_deadline_s = 60. }
  in
  let d = Daemon.start cfg in
  Fun.protect
    ~finally:(fun () -> Daemon.stop ~hard:true d)
    (fun () ->
      let port = Daemon.port d in
      (* hang jobs hold their queue slots for the whole test *)
      let body =
        Json.to_string
          (Proto.spec_to_json { e2e_spec with Proto.chaos = Some Proto.Hang })
      in
      ignore (http port ~meth:"POST" ~path:"/jobs" ~body ());
      ignore (http port ~meth:"POST" ~path:"/jobs" ~body ());
      let r = http port ~meth:"POST" ~path:"/jobs" ~body () in
      Alcotest.(check bool) "typed 503" true
        (contains ~needle:"503 Service Unavailable" r);
      Alcotest.(check bool) "overloaded error code" true
        (contains ~needle:{|"error": "overloaded"|} r);
      Alcotest.(check bool) "Retry-After hint" true
        (contains ~needle:"Retry-After: 3" r);
      Alcotest.(check bool) "reason names the bound" true
        (contains ~needle:"bound 2" r);
      (* shedding is a response, not a hang — and it is counted *)
      let m = http port ~meth:"GET" ~path:"/metrics" () in
      Alcotest.(check bool) "shed counter" true
        (contains ~needle:"hb_serve_shed_total 1" m))

let () =
  Alcotest.run "serve"
    [
      ( "proto",
        [
          Alcotest.test_case "spec round-trip" `Quick test_proto_roundtrip;
          Alcotest.test_case "typed rejections" `Quick test_proto_rejects;
        ] );
      ( "queue",
        [
          Alcotest.test_case "replay after crash" `Quick test_queue_replay;
          Alcotest.test_case "terminal states survive" `Quick
            test_queue_terminal_states;
          Alcotest.test_case "torn tail at every byte" `Quick
            test_queue_torn_tail_every_byte;
          Alcotest.test_case "tenant fairness and backoff gate" `Quick
            test_queue_fairness_and_backoff;
        ] );
      ( "admission",
        [ Alcotest.test_case "bounds and pressure" `Quick test_admission ] );
      ( "daemon",
        [
          Alcotest.test_case "submit to byte-identical report" `Slow
            test_daemon_end_to_end;
          Alcotest.test_case "crash, restart, exactly once" `Slow
            test_daemon_crash_restart_exactly_once;
          Alcotest.test_case "crash chaos absorbed by retry" `Slow
            test_daemon_chaos_crash_retry;
          Alcotest.test_case "hung job watchdog-poisoned" `Slow
            test_daemon_hang_poisoned;
          Alcotest.test_case "typed overload shedding" `Slow
            test_daemon_overload_typed;
        ] );
    ]
