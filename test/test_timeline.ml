(* Timeline tests: the window-sum accounting identity (per-window deltas
   reconcile with the global Stats/Hierarchy counters under every
   encoding), golden determinism of the JSONL/CSV sinks, sink closure on
   Hb_error exits, interval validation, the shadow-metadata census, and
   the encoding-transition counters. *)

module Json = Hb_obs.Json
module Timeline = Hb_obs.Timeline
module Metrics = Hb_obs.Metrics
module Machine = Hb_cpu.Machine
module Stats = Hb_cpu.Stats
module Codegen = Hb_minic.Codegen
module Encoding = Hardbound.Encoding

(* Small pointer-heavy sample workload: heap allocation, a linked
   traversal and array writes, so checks, metadata traffic, setbounds and
   pointer stores all fire. *)
let sample =
  {|
struct node { int v; struct node *next; };

struct node *push(struct node *head, int v) {
  struct node *n;
  n = (struct node *)malloc(sizeof(struct node));
  n->v = v;
  n->next = head;
  return n;
}

int total(struct node *head) {
  int s;
  s = 0;
  while (head != 0) { s = s + head->v; head = head->next; }
  return s;
}

int main() {
  struct node *head;
  int *a;
  int i;
  head = 0;
  a = (int *)malloc(32 * sizeof(int));
  for (i = 0; i < 32; i++) {
    a[i] = i * 3;
    head = push(head, a[i]);
  }
  print_int(total(head));
  return 0;
}
|}

(* Overwrites one heap cell with a compressible pointer, a non-base
   (uncompressible) one, and the compressible one again: under Extern4
   the middle store widens the word's encoding (promotion) and the last
   narrows it back (demotion). *)
let transitions_sample =
  {|
int main() {
  int **s;
  int *a;
  s = (int **)malloc(sizeof(int *));
  a = (int *)malloc(8 * sizeof(int));
  *s = a;
  *s = a + 1;
  *s = a;
  print_int(0);
  return 0;
}
|}

let run_timeline ?(interval = 1_000) ?(source = sample) ~mode ~scheme () =
  Hardbound.Checker.reset_tally ();
  let image, globals = Hb_runtime.Build.compile ~mode source in
  let config = Hb_runtime.Build.config_for ~scheme mode in
  let m = Machine.create ~config ~globals image in
  Machine.enable_timeline ~interval m;
  (match Machine.run m with
   | Machine.Exited 0 -> ()
   | st -> Alcotest.fail (Machine.status_name st));
  Machine.timeline_flush m;
  m

let timeline_of m =
  match Machine.timeline m with
  | Some tl -> tl
  | None -> Alcotest.fail "timeline not enabled"

let encodings =
  [
    ("uncompressed", Encoding.Uncompressed);
    ("extern-4", Encoding.Extern4);
    ("intern-4", Encoding.Intern4);
    ("intern-11", Encoding.Intern11);
  ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---- accounting identity --------------------------------------------- *)

(* The sum of every window's deltas must equal the global end-of-run
   counters, for the unprotected baseline and every encoding; and the
   Stats invariants must hold with the window sums threaded through. *)
let test_window_sums_reconcile () =
  let check_one name ~mode ~scheme =
    let m = run_timeline ~mode ~scheme () in
    let tl = timeline_of m in
    Alcotest.(check bool) (name ^ ": sampled more than one window") true
      (List.length (Timeline.windows tl) > 1);
    (match Timeline.check tl ~expect:(Machine.timeline_fields m) with
     | Ok () -> ()
     | Error e -> Alcotest.fail (name ^ ": " ^ e));
    match
      Stats.check_invariants ~window_sums:(Timeline.sums tl) m.Machine.stats
    with
    | Ok () -> ()
    | Error e -> Alcotest.fail (name ^ ": " ^ e)
  in
  check_one "baseline" ~mode:Codegen.Nochecks ~scheme:Encoding.Uncompressed;
  List.iter
    (fun (name, scheme) ->
      check_one ("hardbound/" ^ name) ~mode:Codegen.Hardbound ~scheme)
    encodings

(* A doctored window sum must be caught, both by Timeline.check and by
   the Stats invariant. *)
let test_leak_detected () =
  let m = run_timeline ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  let tl = timeline_of m in
  let doctored =
    List.map
      (fun (k, v) -> if k = "loads" then (k, v + 1) else (k, v))
      (Timeline.sums tl)
  in
  (match
     Stats.check_invariants ~window_sums:doctored m.Machine.stats
   with
   | Ok () -> Alcotest.fail "doctored window sums passed check_invariants"
   | Error e ->
     Alcotest.(check bool) "error names the leaking key" true
       (contains e "loads"));
  match Timeline.check tl ~expect:doctored with
  | Ok () -> Alcotest.fail "doctored expectation passed Timeline.check"
  | Error e ->
    Alcotest.(check bool) "error says window-sum leak" true
      (contains e "window-sum leak")

(* Window structure: contiguous cycle ranges ending at the global cycle
   count, indexes in order. *)
let test_window_structure () =
  let m = run_timeline ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  let tl = timeline_of m in
  let ws = Timeline.windows tl in
  List.iteri
    (fun i (w : Timeline.window) ->
      Alcotest.(check int) "index in order" i w.Timeline.index;
      Alcotest.(check bool) "window advances" true
        (w.Timeline.end_cycle > w.Timeline.start_cycle))
    ws;
  let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> assert false in
  Alcotest.(check int) "last window closes at the global cycle count"
    (Stats.cycles m.Machine.stats)
    (last ws).Timeline.end_cycle;
  ignore
    (List.fold_left
       (fun prev_end (w : Timeline.window) ->
         Alcotest.(check int) "windows are contiguous" prev_end
           w.Timeline.start_cycle;
         w.Timeline.end_cycle)
       0 ws)

(* ---- golden determinism of the sinks ---------------------------------- *)

let test_sinks_deterministic () =
  let dump scheme =
    let jsonl = Filename.temp_file "hb_tl" ".jsonl" in
    let csv = Filename.temp_file "hb_tl" ".csv" in
    Hardbound.Checker.reset_tally ();
    let mode = Codegen.Hardbound in
    let image, globals = Hb_runtime.Build.compile ~mode sample in
    let config = Hb_runtime.Build.config_for ~scheme mode in
    let m = Machine.create ~config ~globals image in
    Machine.enable_timeline ~interval:1_000 m;
    let tl = timeline_of m in
    Timeline.add_sink tl (Timeline.jsonl_sink jsonl);
    Timeline.add_sink tl (Timeline.csv_sink csv);
    Fun.protect
      ~finally:(fun () -> Timeline.close_sinks tl)
      (fun () ->
        (match Machine.run m with
         | Machine.Exited 0 -> ()
         | st -> Alcotest.fail (Machine.status_name st));
        Machine.timeline_flush m);
    let j = read_file jsonl and c = read_file csv in
    Sys.remove jsonl;
    Sys.remove csv;
    (j, c)
  in
  List.iter
    (fun (name, scheme) ->
      let j1, c1 = dump scheme and j2, c2 = dump scheme in
      Alcotest.(check string) (name ^ ": JSONL byte-identical") j1 j2;
      Alcotest.(check string) (name ^ ": CSV byte-identical") c1 c2;
      (* every JSONL line parses and carries the schema *)
      String.split_on_char '\n' j1
      |> List.filter (fun l -> l <> "")
      |> List.iter (fun line ->
             match Json.of_string line with
             | Json.Obj kvs ->
               List.iter
                 (fun key ->
                   Alcotest.(check bool)
                     (name ^ ": line has " ^ key)
                     true (List.mem_assoc key kvs))
                 [ "window"; "start_cycle"; "end_cycle"; "deltas"; "census" ]
             | _ -> Alcotest.fail "JSONL line is not an object");
      (* CSV: a header plus one row per window *)
      let lines =
        String.split_on_char '\n' c1 |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check bool) (name ^ ": CSV header first") true
        (match lines with
         | hdr :: _ -> contains hdr "window,start_cycle,end_cycle"
         | [] -> false))
    encodings

(* ---- sink closure on Hb_error ----------------------------------------- *)

(* The CLI wraps runs in [Fun.protect ~finally:close_sinks]; a run dying
   with Hb_error must still leave a flushed, parseable partial file. *)
let test_sinks_closed_on_error () =
  let path = Filename.temp_file "hb_tl" ".jsonl" in
  let tl = Timeline.create ~interval:100 in
  Timeline.add_sink tl (Timeline.jsonl_sink path);
  (try
     Fun.protect
       ~finally:(fun () -> Timeline.close_sinks tl)
       (fun () ->
         Timeline.record tl ~cycle:100
           ~fields:[ ("instructions", 42); ("cycles", 100) ]
           ~census:Timeline.empty_census;
         Hb_error.fail ~component:"test" "simulated mid-run abort")
   with Hb_error.Hb_error _ -> ());
  let content = read_file path in
  Sys.remove path;
  let lines =
    String.split_on_char '\n' content |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "the pre-abort window was flushed" 1 (List.length lines);
  match Json.of_string (List.hd lines) with
  | Json.Obj kvs ->
    Alcotest.(check bool) "flushed line has deltas" true
      (List.mem_assoc "deltas" kvs)
  | _ -> Alcotest.fail "flushed line is not a JSON object"

(* close_sinks is idempotent *)
let test_close_idempotent () =
  let path = Filename.temp_file "hb_tl" ".jsonl" in
  let tl = Timeline.create ~interval:100 in
  Timeline.add_sink tl (Timeline.jsonl_sink path);
  Timeline.close_sinks tl;
  Timeline.close_sinks tl;
  Sys.remove path

(* ---- validation / defaults -------------------------------------------- *)

let test_interval_validation () =
  List.iter
    (fun bad ->
      match Timeline.create ~interval:bad with
      | exception Hb_error.Hb_error (_, msg) ->
        Alcotest.(check bool) "error names the interval" true
          (contains msg "interval")
      | _ -> Alcotest.fail (Printf.sprintf "interval %d accepted" bad))
    [ 0; -1; -10_000 ]

let test_off_by_default () =
  Hardbound.Checker.reset_tally ();
  let mode = Codegen.Hardbound in
  let image, globals = Hb_runtime.Build.compile ~mode sample in
  let m =
    Machine.create ~config:(Hb_runtime.Build.config_for mode) ~globals image
  in
  (match Machine.run m with
   | Machine.Exited 0 -> ()
   | st -> Alcotest.fail (Machine.status_name st));
  Alcotest.(check bool) "no timeline unless enabled" true
    (Machine.timeline m = None)

(* ---- shadow census ----------------------------------------------------- *)

let last_census m =
  let tl = timeline_of m in
  let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> assert false in
  (last (Timeline.windows tl)).Timeline.census

let test_census_by_scheme () =
  (* Extern4: live pointers compress inline, no intern counts, and every
     full pointer owns exactly 8 shadow bytes. *)
  let c =
    last_census (run_timeline ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 ())
  in
  Alcotest.(check bool) "extern4: live pointers in memory" true
    (c.Timeline.live_ptrs > 0);
  Alcotest.(check bool) "extern4: bounded objects" true
    (c.Timeline.live_objects > 0
    && c.Timeline.live_objects <= c.Timeline.live_ptrs);
  Alcotest.(check int) "extern4: no intern-4 entries" 0 c.Timeline.enc_int4;
  Alcotest.(check int) "extern4: no intern-11 entries" 0 c.Timeline.enc_int11;
  Alcotest.(check int) "extern4: 8 shadow bytes per full pointer"
    (8 * c.Timeline.enc_full)
    c.Timeline.shadow_bytes;
  Alcotest.(check int) "extern4: kinds partition the live pointers"
    c.Timeline.live_ptrs
    (c.Timeline.enc_ext4 + c.Timeline.enc_int4 + c.Timeline.enc_int11
    + c.Timeline.enc_full);
  Alcotest.(check bool) "extern4: tag space materialized" true
    (c.Timeline.tag_bytes > 0 && c.Timeline.tag_pages > 0);
  (* Uncompressed: everything is full-width *)
  let u =
    last_census
      (run_timeline ~mode:Codegen.Hardbound ~scheme:Encoding.Uncompressed ())
  in
  Alcotest.(check int) "uncompressed: all pointers full" u.Timeline.live_ptrs
    u.Timeline.enc_full;
  Alcotest.(check int) "uncompressed: no inline entries" 0
    (u.Timeline.enc_ext4 + u.Timeline.enc_int4 + u.Timeline.enc_int11)

let test_census_gauges () =
  let m = run_timeline ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  let text = Metrics.to_prometheus (Machine.metrics m) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposes " ^ needle) true (contains text needle))
    [
      "hb_shadow_bytes";
      "hb_tag_bytes";
      "hb_live_bounded_objects";
      "hb_live_pointers";
      "hb_encoding_dist{kind=\"extern4\"}";
      "hb_encoding_dist{kind=\"full\"}";
    ]

(* ---- encoding transitions ---------------------------------------------- *)

let test_transition_counters () =
  let m =
    run_timeline ~source:transitions_sample ~mode:Codegen.Hardbound
      ~scheme:Encoding.Extern4 ()
  in
  let s = m.Machine.stats in
  Alcotest.(check bool) "promotions observed" true (s.Stats.enc_promotions > 0);
  Alcotest.(check bool) "demotions observed" true (s.Stats.enc_demotions > 0);
  Alcotest.(check bool) "pointer-arith promotions observed" true
    (s.Stats.ptr_arith_promotions > 0);
  Alcotest.(check bool) "compressible setbounds observed" true
    (s.Stats.setbound_compressible > 0);
  (* the baseline never classifies: all four counters stay zero *)
  let b =
    run_timeline ~source:transitions_sample ~mode:Codegen.Nochecks
      ~scheme:Encoding.Uncompressed ()
  in
  Alcotest.(check int) "baseline: no transitions" 0
    (b.Machine.stats.Stats.enc_promotions
    + b.Machine.stats.Stats.enc_demotions
    + b.Machine.stats.Stats.ptr_arith_promotions
    + b.Machine.stats.Stats.setbound_compressible)

(* ---- report ------------------------------------------------------------ *)

let test_report_renders () =
  let m = run_timeline ~mode:Codegen.Hardbound ~scheme:Encoding.Extern4 () in
  let text = Timeline.report (timeline_of m) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report shows " ^ needle) true
        (contains text needle))
    [
      "per-window counter deltas";
      "heatmap";
      "shadow-metadata census";
      "final encoding dist";
      "live_ptrs";
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "timeline"
    [
      ( "identities",
        [
          tc "window sums equal global counters for every encoding"
            test_window_sums_reconcile;
          tc "doctored sums are rejected" test_leak_detected;
          tc "windows are contiguous and ordered" test_window_structure;
        ] );
      ( "golden",
        [ tc "JSONL/CSV sinks are byte-deterministic" test_sinks_deterministic ]
      );
      ( "sinks",
        [
          tc "closed and flushed on Hb_error" test_sinks_closed_on_error;
          tc "close is idempotent" test_close_idempotent;
        ] );
      ( "validation",
        [
          tc "non-positive intervals are typed errors" test_interval_validation;
          tc "timeline off by default" test_off_by_default;
        ] );
      ( "census",
        [
          tc "per-scheme census invariants" test_census_by_scheme;
          tc "final census exported as gauges" test_census_gauges;
        ] );
      ( "transitions",
        [ tc "promotion/demotion counters fire" test_transition_counters ] );
      ( "report", [ tc "phase report renders" test_report_renders ] );
    ]
