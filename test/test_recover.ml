(* Recovery subsystem tests: precise trap records, the four recovery
   policies (abort / report / null-guard / rollback), the violation
   budget, the write-ahead campaign journal (torn tails, corruption,
   truncation), crash-and-resume byte-identity (including a real
   SIGKILL), deadlines, and the snapshot page-materialization
   guarantee the rollback policy depends on. *)

module Build = Hb_runtime.Build
module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Stats = Hb_cpu.Stats
module Snapshot = Hb_cpu.Snapshot
module Physmem = Hb_mem.Physmem
module Encoding = Hardbound.Encoding
module Json = Hb_obs.Json
module Policy = Hb_recover.Policy
module Trap = Hb_recover.Trap
module Recover = Hb_recover.Recover
module Journal = Hb_recover.Journal
module Deadline = Hb_recover.Deadline
module Campaign = Hb_fault.Campaign
module Recovery = Hb_harness.Recovery

(* ---- fixtures ---------------------------------------------------------- *)

(* Six valid ints, then the loop reads three past the bound: three
   precise load traps under any continuing policy. *)
let over_read_src =
  {|
int main() {
  int *p;
  int i;
  int sum;
  p = (int*)malloc(24);
  for (i = 0; i < 6; i++) {
    p[i] = i;
  }
  sum = 0;
  for (i = 0; i < 9; i++) {
    sum = sum + p[i];
  }
  print_int(sum);
  return 0;
}
|}

(* One out-of-bounds store one word past the allocation; the in-bounds
   cell is printed afterwards so output proves the program survived. *)
let over_write_src =
  {|
int main() {
  int *a;
  a = (int*)malloc(8);
  a[0] = 7;
  a[2] = 42;
  print_int(a[0]);
  return 0;
}
|}

(* Fourteen violating loads: enough to exhaust a small budget. *)
let many_violations_src =
  {|
int main() {
  int *p;
  int i;
  int sum;
  p = (int*)malloc(24);
  sum = 0;
  for (i = 0; i < 20; i++) {
    sum = sum + p[i];
  }
  print_int(sum);
  return 0;
}
|}

let supervised ?(budget = Policy.default.Policy.violation_budget) ~policy src
    =
  let image, globals = Build.compile ~mode:Codegen.Hardbound src in
  let config = Build.config_for ~scheme:Encoding.Extern4 Codegen.Hardbound in
  let m = Machine.create ~config ~globals image in
  let rcfg =
    { (Policy.with_policy policy) with Policy.violation_budget = budget }
  in
  let o = Recover.run ~line_base:Build.runtime_lines ~config:rcfg m in
  (m, o)

(* Same small campaign workload as test_fault: real pointer work, fast. *)
let little_src =
  {|
int main() {
  int *cells[40];
  int i;
  int sum;
  for (i = 0; i < 40; i++) {
    cells[i] = (int*)malloc(8);
    cells[i][0] = i * 3;
    cells[i][1] = i;
  }
  sum = 0;
  for (i = 0; i < 40; i++) {
    sum = sum + cells[i][0];
  }
  print_int(sum);
  return 0;
}
|}

let maker ?max_instrs () =
  let image, globals = Build.compile ~mode:Codegen.Hardbound little_src in
  let config = Build.config_for ?max_instrs Codegen.Hardbound in
  fun () -> Machine.create ~config ~globals image

let report_string r = Json.to_string_pretty (Campaign.to_json r)

let temp_path () =
  let p = Filename.temp_file "hb_recover_test" ".jsonl" in
  Sys.remove p;
  p

let read_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let write_lines path lines =
  let oc = open_out_bin path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc

(* ---- trap records ------------------------------------------------------ *)

let test_trap_precision () =
  let _, o = supervised ~policy:Policy.Report over_read_src in
  Alcotest.(check int) "three over-reads, three traps" 3
    (List.length o.Recover.traps);
  let h = List.hd o.Recover.traps in
  let t = h.Recover.trap in
  Alcotest.(check string) "faulting function" "main" t.Trap.fn;
  Alcotest.(check bool) "user-code line resolved" true (t.Trap.line > 0);
  Alcotest.(check bool) "load, not store" false t.Trap.is_store;
  Alcotest.(check int) "word access" 4 t.Trap.width;
  Alcotest.(check bool) "upper-bound overflow: addr at/past bound" true
    (t.Trap.addr >= t.Trap.bound);
  Alcotest.(check bool) "bounds metadata ordered" true
    (t.Trap.base < t.Trap.bound);
  Alcotest.(check string) "encoding recorded" "extern-4" t.Trap.scheme;
  Alcotest.(check bool) "retired-instruction stamp" true (t.Trap.at_instr > 0);
  (* successive traps walk successive words *)
  (match o.Recover.traps with
   | a :: b :: _ ->
     Alcotest.(check int) "stride of one word" 4
       (b.Recover.trap.Trap.addr - a.Recover.trap.Trap.addr)
   | _ -> Alcotest.fail "expected at least two traps")

let test_policy_names () =
  List.iter
    (fun p ->
      match Policy.of_name (Policy.name p) with
      | Some q -> Alcotest.(check bool) (Policy.name p) true (p = q)
      | None -> Alcotest.failf "%s did not round-trip" (Policy.name p))
    Policy.all;
  Alcotest.(check bool) "unknown rejected" true
    (Policy.of_name "panic" = None)

(* ---- policies ---------------------------------------------------------- *)

let test_abort_is_historical () =
  let _, o = supervised ~policy:Policy.Abort over_read_src in
  (match o.Recover.status with
   | Machine.Bounds_violation _ -> ()
   | st -> Alcotest.failf "expected bounds violation, got %s"
             (Machine.status_name st));
  Alcotest.(check int) "one trap record, the aborting one" 1
    (List.length o.Recover.traps);
  Alcotest.(check int) "nothing absorbed" 0 o.Recover.handled_count;
  (match o.Recover.traps with
   | [ h ] ->
     Alcotest.(check bool) "action is abort" true
       (h.Recover.action = Recover.Aborted)
   | _ -> Alcotest.fail "trap list shape")

let test_report_retires_unchecked () =
  let m, o = supervised ~policy:Policy.Report over_read_src in
  Alcotest.(check bool) "clean exit" true (o.Recover.status = Machine.Exited 0);
  Alcotest.(check int) "all three absorbed" 3 o.Recover.handled_count;
  List.iter
    (fun h ->
      Alcotest.(check bool) "every action retire-unchecked" true
        (h.Recover.action = Recover.Retired_unchecked))
    o.Recover.traps;
  (* the unchecked loads read the untouched heap beyond the allocation:
     zeros, so the sum is unchanged from the in-bounds prefix *)
  Alcotest.(check string) "output intact" "15" (String.trim (Machine.output m))

let test_null_guard_load_yields_zero () =
  let m, o = supervised ~policy:Policy.Null_guard over_read_src in
  Alcotest.(check bool) "clean exit" true (o.Recover.status = Machine.Exited 0);
  Alcotest.(check int) "three squashes" 3 o.Recover.handled_count;
  List.iter
    (fun h ->
      Alcotest.(check bool) "every action squash" true
        (h.Recover.action = Recover.Squashed))
    o.Recover.traps;
  (* squashed loads yield 0: sum over p[0..8] = 0+..+5 = 15 *)
  Alcotest.(check string) "squashed loads read as zero" "15"
    (String.trim (Machine.output m))

let test_null_guard_drops_store () =
  let m, o = supervised ~policy:Policy.Null_guard over_write_src in
  Alcotest.(check bool) "clean exit" true (o.Recover.status = Machine.Exited 0);
  Alcotest.(check int) "one squashed store" 1 o.Recover.handled_count;
  let h = List.hd o.Recover.traps in
  Alcotest.(check bool) "it was a store" true h.Recover.trap.Trap.is_store;
  Alcotest.(check string) "program survived with its data intact" "7"
    (String.trim (Machine.output m));
  (* the dropped store never reached memory *)
  Alcotest.(check int) "no 42 at the faulting address" 0
    (Physmem.peek_u32 m.Machine.mem h.Recover.trap.Trap.addr)

let test_report_lets_store_through () =
  (* the same program under report: the store retires unchecked and the
     faulting address really holds 42 afterwards — the two policies are
     distinguishable in memory, not just in the trap log *)
  let m, o = supervised ~policy:Policy.Report over_write_src in
  Alcotest.(check bool) "clean exit" true (o.Recover.status = Machine.Exited 0);
  let h = List.hd o.Recover.traps in
  Alcotest.(check int) "unchecked store reached memory" 42
    (Physmem.peek_u32 m.Machine.mem h.Recover.trap.Trap.addr)

let test_violation_budget () =
  let _, o =
    supervised ~policy:Policy.Report ~budget:3 many_violations_src
  in
  Alcotest.(check bool) "budget flagged" true o.Recover.budget_exhausted;
  Alcotest.(check int) "exactly the budget absorbed" 3 o.Recover.handled_count;
  Alcotest.(check int) "budget traps plus the aborting one" 4
    (List.length o.Recover.traps);
  (match o.Recover.status with
   | Machine.Bounds_violation _ -> ()
   | st -> Alcotest.failf "expected abort after budget, got %s"
             (Machine.status_name st))

let test_rollback_recovers () =
  let m, o = supervised ~policy:Policy.Rollback over_read_src in
  Alcotest.(check bool) "clean exit" true (o.Recover.status = Machine.Exited 0);
  Alcotest.(check bool) "rollbacks happened" true (o.Recover.rollbacks > 0);
  Alcotest.(check bool) "every trap absorbed" true
    (o.Recover.handled_count = List.length o.Recover.traps);
  (* the replayed loads were squashed, so the visible result matches
     null-guard's *)
  Alcotest.(check string) "suppressed replays read as zero" "15"
    (String.trim (Machine.output m));
  (* recovery paths must leave the accounting identity intact
     (Recover.run itself re-checks; this is the explicit witness) *)
  (match Stats.check_invariants m.Machine.stats with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "stats identity broken: %s" msg)

let test_rollback_escalates () =
  (* a tiny ring and zero allowed repeats: the very first repeated trap
     escalates rollback -> report, and the run still completes *)
  let image, globals = Build.compile ~mode:Codegen.Hardbound over_read_src in
  let config = Build.config_for ~scheme:Encoding.Extern4 Codegen.Hardbound in
  let m = Machine.create ~config ~globals image in
  let rcfg =
    { Policy.default with
      Policy.policy = Policy.Rollback;
      max_rollbacks = 0 }
  in
  let o = Recover.run ~line_base:Build.runtime_lines ~config:rcfg m in
  Alcotest.(check bool) "escalated" true (o.Recover.escalations > 0);
  Alcotest.(check bool) "no rollback allowed" true (o.Recover.rollbacks = 0);
  Alcotest.(check bool) "still completes" true
    (o.Recover.status = Machine.Exited 0)

(* ---- corpus matrix (the detection guarantee) --------------------------- *)

let test_corpus_matrix () =
  (* every 8th case keeps the sweep fast while crossing every idiom;
     bench --exp recover runs a denser sample of the same matrix *)
  let cases =
    List.filteri (fun i _ -> i mod 8 = 0) (Hb_violations.Gen.all_cases ())
  in
  let cells = Recovery.matrix ~cases () in
  Alcotest.(check int) "one cell per policy" (List.length Policy.all)
    (List.length cells);
  Alcotest.(check bool)
    "every bad case detected, no good case flagged, all policies" true
    (Recovery.all_detected cells);
  List.iter
    (fun (c : Recovery.cell) ->
      Alcotest.(check int)
        (Policy.name c.Recovery.policy ^ ": taxonomy is a partition")
        c.Recovery.detected
        (c.Recovery.aborted + c.Recovery.survived + c.Recovery.impaired);
      match c.Recovery.policy with
      | Policy.Abort ->
        Alcotest.(check int) "abort: every detection terminates"
          c.Recovery.detected c.Recovery.aborted
      | Policy.Report | Policy.Null_guard | Policy.Rollback ->
        Alcotest.(check bool)
          (Policy.name c.Recovery.policy ^ ": some runs survive their trap")
          true
          (c.Recovery.survived > 0))
    cells

(* ---- journal ----------------------------------------------------------- *)

let test_journal_roundtrip () =
  let path = temp_path () in
  let records =
    [
      Json.Obj [ ("type", Json.String "header"); ("n", Json.Int 1) ];
      Json.Obj [ ("type", Json.String "run"); ("idx", Json.Int 0) ];
      Json.Obj [ ("type", Json.String "run"); ("idx", Json.Int 1) ];
    ]
  in
  let w = Journal.create path in
  List.iter (Journal.append w) records;
  Journal.close w;
  let back = Journal.read path in
  Alcotest.(check (list string)) "records survive the round trip"
    (List.map Json.to_string records)
    (List.map Json.to_string back);
  Sys.remove path

let test_journal_torn_tail () =
  let path = temp_path () in
  let w = Journal.create path in
  Journal.append w (Json.Obj [ ("idx", Json.Int 0) ]);
  Journal.append w (Json.Obj [ ("idx", Json.Int 1) ]);
  Journal.close w;
  (* simulate a SIGKILL mid-write: half a record, no newline *)
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc {|{"idx": 2, "trunc|};
  close_out oc;
  let back = Journal.read path in
  Alcotest.(check int) "torn tail dropped, prefix intact" 2
    (List.length back);
  (* resuming over the torn tail must not glue the next record onto the
     partial line: append_to repairs to a record boundary first *)
  let w = Journal.append_to path in
  Journal.append w (Json.Obj [ ("idx", Json.Int 2) ]);
  Journal.close w;
  let back = Journal.read path in
  Alcotest.(check int) "append after torn tail keeps the journal readable"
    3 (List.length back);
  Sys.remove path

let test_journal_midfile_corruption () =
  let path = temp_path () in
  write_lines path [ {|{"idx": 0}|}; "not json at all"; {|{"idx": 2}|} ];
  (match Journal.read path with
   | _ -> Alcotest.fail "mid-file corruption must raise"
   | exception Hb_error.Hb_error (ctx, _) ->
     Alcotest.(check string) "typed component" "journal"
       ctx.Hb_error.component);
  Sys.remove path

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Regression: the corruption error must name the corrupt line's own
   1-based position in the file — corruption at line 3 says "line 3",
   regardless of how many records parsed before it. *)
let test_journal_corruption_line_number () =
  let path = temp_path () in
  write_lines path
    [ {|{"idx": 0}|}; {|{"idx": 1}|}; "{corrupt"; {|{"idx": 3}|} ];
  (match Journal.read path with
   | _ -> Alcotest.fail "corruption at line 3 must raise"
   | exception Hb_error.Hb_error (ctx, msg) ->
     Alcotest.(check string) "typed component" "journal"
       ctx.Hb_error.component;
     Alcotest.(check bool)
       (Printf.sprintf "message names line 3: %S" msg)
       true (contains msg "line 3");
     Alcotest.(check bool) "message names the journal path" true
       (contains msg path));
  Sys.remove path

(* I/O failures surface as typed errors naming the journal path, never
   raw Sys_error/Unix_error: opening a directory as a journal, and
   appending through a closed writer (the closed fd stands in for any
   mid-campaign I/O failure — EINTR is the one errno retried instead). *)
let test_journal_io_errors_are_typed () =
  let dir = Filename.temp_file "hb_recover_dir" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  (match Journal.create dir with
   | _ -> Alcotest.fail "creating a journal over a directory must raise"
   | exception Hb_error.Hb_error (ctx, msg) ->
     Alcotest.(check string) "typed component" "journal"
       ctx.Hb_error.component;
     Alcotest.(check bool) "create error names the path" true
       (contains msg dir));
  Unix.rmdir dir;
  let path = temp_path () in
  let w = Journal.create path in
  Journal.append w (Json.Obj [ ("idx", Json.Int 0) ]);
  Journal.close w;
  (match Journal.append w (Json.Obj [ ("idx", Json.Int 1) ]) with
   | () -> Alcotest.fail "appending through a closed writer must raise"
   | exception Hb_error.Hb_error (ctx, msg) ->
     Alcotest.(check string) "typed component" "journal"
       ctx.Hb_error.component;
     Alcotest.(check bool) "append error names the path" true
       (contains msg path));
  Sys.remove path

(* ---- campaign journaling / resume -------------------------------------- *)

let campaign_cfg =
  { Campaign.default with Campaign.label = "little"; runs = 40; seed = 5 }

let test_journaled_equals_plain () =
  let mk = maker () in
  let plain = Campaign.run ~mk campaign_cfg in
  let path = temp_path () in
  let journaled = Campaign.run ~journal:path ~mk campaign_cfg in
  Alcotest.(check string) "journaling does not perturb the campaign"
    (report_string plain) (report_string journaled);
  (* a completed journal replays into the same report with no execution *)
  let resumed = Campaign.run ~resume:path ~mk campaign_cfg in
  Alcotest.(check string) "done journal reconstructs byte-identically"
    (report_string plain) (report_string resumed);
  Sys.remove path

let test_truncated_resume () =
  let mk = maker () in
  let plain = Campaign.run ~mk campaign_cfg in
  let path = temp_path () in
  ignore (Campaign.run ~journal:path ~mk campaign_cfg);
  (* keep the header and the first 10 records: a crash 10 runs in *)
  (match read_lines path with
   | header :: rest ->
     let prefix = List.filteri (fun i _ -> i < 10) rest in
     write_lines path (header :: prefix)
   | [] -> Alcotest.fail "journal is empty");
  let resumed = Campaign.run ~resume:path ~mk campaign_cfg in
  Alcotest.(check string) "resume completes byte-identically"
    (report_string plain) (report_string resumed);
  (* and the journal is now complete: resuming again replays, runs
     nothing, and still matches *)
  let again = Campaign.run ~resume:path ~mk campaign_cfg in
  Alcotest.(check string) "second resume replays the done journal"
    (report_string plain) (report_string again);
  Sys.remove path

let test_resume_rejects_mismatched_config () =
  let mk = maker () in
  let path = temp_path () in
  ignore (Campaign.run ~journal:path ~mk campaign_cfg);
  (match
     Campaign.run ~resume:path ~mk { campaign_cfg with Campaign.seed = 6 }
   with
   | _ -> Alcotest.fail "mismatched seed must be rejected"
   | exception Hb_error.Hb_error _ -> ());
  (match
     Campaign.run ~resume:path ~mk
       { campaign_cfg with Campaign.policy = Policy.Null_guard }
   with
   | _ -> Alcotest.fail "mismatched policy must be rejected"
   | exception Hb_error.Hb_error _ -> ());
  Sys.remove path

let test_journal_resume_exclusive () =
  let mk = maker () in
  let path = temp_path () in
  ignore (Campaign.run ~journal:path ~mk campaign_cfg);
  (match Campaign.run ~journal:path ~resume:path ~mk campaign_cfg with
   | _ -> Alcotest.fail "--journal with --resume must be rejected"
   | exception Hb_error.Hb_error _ -> ());
  Sys.remove path

let test_sigkill_resume () =
  let mk = maker () in
  let cfg = { campaign_cfg with Campaign.runs = 120 } in
  let plain = Campaign.run ~mk cfg in
  let path = temp_path () in
  (match Unix.fork () with
   | 0 ->
     (* child: run the journaled campaign until the parent kills it *)
     (try ignore (Campaign.run ~journal:path ~mk cfg) with _ -> ());
     Unix._exit 0
   | pid ->
     (* wait until at least the header and five records are durable *)
     let deadline = Unix.gettimeofday () +. 30.0 in
     let rec wait () =
       let n = try List.length (read_lines path) with Sys_error _ -> 0 in
       if n >= 6 then ()
       else if Unix.gettimeofday () > deadline then
         Alcotest.fail "journal never reached 5 records"
       else begin
         ignore (Unix.select [] [] [] 0.01);
         wait ()
       end
     in
     wait ();
     Unix.kill pid Sys.sigkill;
     ignore (Unix.waitpid [] pid));
  let resumed = Campaign.run ~resume:path ~mk cfg in
  Alcotest.(check string) "SIGKILL'd campaign resumes byte-identically"
    (report_string plain) (report_string resumed);
  Sys.remove path

let test_deadline_partial_then_resume () =
  let mk = maker () in
  let plain = Campaign.run ~mk campaign_cfg in
  let path = temp_path () in
  let partial =
    Campaign.run ~journal:path ~deadline:(Deadline.after 0.0) ~mk campaign_cfg
  in
  Alcotest.(check bool) "deadline flagged" true
    partial.Campaign.deadline_expired;
  Alcotest.(check int) "nothing ran" 0 (List.length partial.Campaign.records);
  (* the partial report still serializes, with the expiry visible *)
  (match Campaign.to_json partial with
   | Json.Obj fields ->
     Alcotest.(check bool) "deadline_expired key present" true
       (List.mem_assoc "deadline_expired" fields)
   | _ -> Alcotest.fail "report JSON is not an object");
  let resumed = Campaign.run ~resume:path ~mk campaign_cfg in
  Alcotest.(check string) "resume finishes the job byte-identically"
    (report_string plain) (report_string resumed);
  Sys.remove path

(* A SIGTERM/SIGINT (simulated — no kernel involved) winds the campaign
   down through the deadline-partial path: the journal closes
   well-formed and a resume finishes the remaining runs
   byte-identically. *)
let test_interrupt_partial_then_resume () =
  let module Interrupt = Hb_recover.Interrupt in
  let mk = maker () in
  let plain = Campaign.run ~mk campaign_cfg in
  let path = temp_path () in
  Fun.protect ~finally:Interrupt.reset (fun () ->
      (* interrupt mid-flight: the observe hook runs once per completed
         record, so the flag flips deterministically after the 5th run *)
      let seen = ref 0 in
      let observe _ _ =
        incr seen;
        if !seen = 5 then Interrupt.simulate ()
      in
      let partial = Campaign.run ~journal:path ~observe ~mk campaign_cfg in
      Alcotest.(check bool) "interrupt surfaces as the deadline flag" true
        partial.Campaign.deadline_expired;
      Alcotest.(check int) "stopped right after the interrupted run" 5
        (List.length partial.Campaign.records);
      Alcotest.(check string) "simulated signal is named" "SIGTERM"
        (Interrupt.signal_name ());
      (* the exit code the CLIs use for this state is distinct *)
      Alcotest.(check bool) "distinct exit code" true
        (not (List.mem Interrupt.exit_code [ 0; 1; 2; 3; 4; 5 ])));
  Alcotest.(check bool) "reset clears the flag" false (Interrupt.requested ());
  (* with the flag cleared, the journal resumes to completion *)
  let resumed = Campaign.run ~resume:path ~mk campaign_cfg in
  Alcotest.(check string) "resume after interrupt is byte-identical"
    (report_string plain) (report_string resumed);
  Sys.remove path

let test_recovery_policy_campaign () =
  let mk = maker () in
  let cfg =
    { campaign_cfg with
      Campaign.runs = 30;
      Campaign.policy = Policy.Null_guard }
  in
  let r1 = Campaign.run ~mk cfg in
  let r2 = Campaign.run ~mk cfg in
  Alcotest.(check string) "recovery-policy campaign is deterministic"
    (report_string r1) (report_string r2);
  (match Campaign.to_json r1 with
   | Json.Obj fields ->
     (match List.assoc_opt "campaign" fields with
      | Some (Json.Obj c) ->
        Alcotest.(check bool) "policy recorded in the report" true
          (List.assoc_opt "policy" c = Some (Json.String "null-guard"))
      | _ -> Alcotest.fail "campaign block missing")
   | _ -> Alcotest.fail "report JSON is not an object")

(* ---- snapshot page materialization ------------------------------------- *)

let test_restore_does_not_materialize () =
  let m = maker () () in
  (* run partway: some heap pages and shadow pages exist, others don't *)
  (try
     for _ = 1 to 2_000 do
       if m.Machine.halted = None then Machine.step m
     done
   with _ -> ());
  let snap = Snapshot.capture m in
  let pages0 = Physmem.pages_touched m.Machine.mem in
  Alcotest.(check int) "capture counts the materialized pages" pages0
    (Snapshot.touched_pages snap);
  (* materialize a page the capture never touched *)
  Physmem.write_u32 m.Machine.mem 0x00F0_0000 1;
  Alcotest.(check bool) "probe really materialized a page" true
    (Physmem.pages_touched m.Machine.mem > pages0);
  Snapshot.restore m snap;
  Alcotest.(check int)
    "restore drops pages the capture never held (Figure 6 stability)"
    pages0
    (Physmem.pages_touched m.Machine.mem);
  Alcotest.(check bool) "restored state equals the capture" true
    (Snapshot.equal (Snapshot.capture m) snap)

let () =
  Alcotest.run "recover"
    [
      ( "trap",
        [
          Alcotest.test_case "precision" `Quick test_trap_precision;
          Alcotest.test_case "policy-names" `Quick test_policy_names;
        ] );
      ( "policy",
        [
          Alcotest.test_case "abort" `Quick test_abort_is_historical;
          Alcotest.test_case "report" `Quick test_report_retires_unchecked;
          Alcotest.test_case "null-guard-load" `Quick
            test_null_guard_load_yields_zero;
          Alcotest.test_case "null-guard-store" `Quick
            test_null_guard_drops_store;
          Alcotest.test_case "report-store" `Quick
            test_report_lets_store_through;
          Alcotest.test_case "budget" `Quick test_violation_budget;
          Alcotest.test_case "rollback" `Quick test_rollback_recovers;
          Alcotest.test_case "escalation" `Quick test_rollback_escalates;
        ] );
      ( "matrix",
        [ Alcotest.test_case "corpus-sample" `Slow test_corpus_matrix ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn-tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "corruption" `Quick
            test_journal_midfile_corruption;
          Alcotest.test_case "corruption-line-number" `Quick
            test_journal_corruption_line_number;
          Alcotest.test_case "io-errors-typed" `Quick
            test_journal_io_errors_are_typed;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "journaled-equals-plain" `Quick
            test_journaled_equals_plain;
          Alcotest.test_case "truncated-resume" `Quick test_truncated_resume;
          Alcotest.test_case "config-mismatch" `Quick
            test_resume_rejects_mismatched_config;
          Alcotest.test_case "journal-resume-exclusive" `Quick
            test_journal_resume_exclusive;
          Alcotest.test_case "sigkill-resume" `Slow test_sigkill_resume;
          Alcotest.test_case "deadline" `Quick
            test_deadline_partial_then_resume;
          Alcotest.test_case "interrupt" `Quick
            test_interrupt_partial_then_resume;
          Alcotest.test_case "recovery-policy" `Quick
            test_recovery_policy_campaign;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "no-materialize-on-restore" `Quick
            test_restore_does_not_materialize;
        ] );
    ]
