(* Host observability plane tests: the monotonic clock, the span
   profiler's accounting identity, the progress tracker, the live status
   endpoint, and the campaign's byte-identity promise under all of it. *)

module Build = Hb_runtime.Build
module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Json = Hb_obs.Json
module Metrics = Hb_obs.Metrics
module Clock = Hb_obs.Clock
module Host = Hb_obs.Host
module Progress = Hb_obs.Progress
module Serve = Hb_obs.Serve
module Campaign = Hb_fault.Campaign

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let tmp suffix = Filename.temp_file "hb_host_test" suffix

(* ---- clock ------------------------------------------------------------ *)

let test_clock_monotone () =
  let a = Clock.now_ns () in
  let prev = ref a in
  for _ = 1 to 1000 do
    let t = Clock.now_ns () in
    if Int64.compare t !prev < 0 then
      Alcotest.failf "clock went backwards: %Ld after %Ld" t !prev;
    prev := t
  done;
  Alcotest.(check bool) "elapsed_s never negative" true
    (Clock.elapsed_s ~t0:a >= 0.);
  (* a t0 from the future clamps to zero rather than going negative *)
  let future = Int64.add (Clock.now_ns ()) 1_000_000_000L in
  Alcotest.(check (float 0.0)) "future t0 clamps" 0.0
    (Clock.elapsed_s ~t0:future);
  Alcotest.(check int64) "ns_of_s" 1_500_000_000L (Clock.ns_of_s 1.5);
  Alcotest.(check (float 1e-9)) "s_of_ns inverse" 1.5
    (Clock.s_of_ns 1_500_000_000L)

(* ---- span tree accounting --------------------------------------------- *)

let test_span_tree_identity () =
  let t = Host.create ~name:"session" () in
  Host.with_span t "a" (fun () ->
      Host.with_span t "a1" (fun () -> ignore (Sys.opaque_identity (ref 0)));
      Host.with_span t "a2" (fun () -> ()));
  Host.with_span t "b" (fun () -> Host.annotate t "instrs" 1234);
  Host.sample t;
  Host.finish t;
  (match Host.check t with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "well-formed profile rejected: %s" msg);
  let kids = List.rev t.Host.root.Host.children_rev in
  Alcotest.(check (list string)) "children in open order" [ "a"; "b" ]
    (List.map (fun (s : Host.span) -> s.Host.sp_name) kids);
  (* every closed span carries a non-negative wall time *)
  let rec walk (sp : Host.span) =
    if Int64.compare sp.Host.wall_ns 0L < 0 then
      Alcotest.failf "span %s left open" sp.Host.sp_name;
    List.iter walk sp.Host.children_rev
  in
  walk t.Host.root;
  Alcotest.(check int) "one telemetry sample" 1
    (List.length t.Host.samples_rev)

let test_doctored_sum_rejected () =
  let t = Host.create () in
  Host.with_span t "a" (fun () -> ());
  Host.finish t;
  (match t.Host.root.Host.children_rev with
   | [ sp ] ->
     (* doctor the child past its parent: the identity must catch it *)
     sp.Host.wall_ns <- Int64.add t.Host.root.Host.wall_ns 1L
   | _ -> Alcotest.fail "expected exactly one child");
  match Host.check t with
  | Ok () -> Alcotest.fail "doctored child-sum accepted"
  | Error msg ->
    Alcotest.(check bool) "message names the parent" true
      (contains msg "session" || contains msg "exceed")

let test_open_span_is_an_error () =
  let t = Host.create () in
  Host.open_span t "dangling";
  (match Host.check t with
   | Ok () -> Alcotest.fail "open span accepted by check"
   | Error _ -> ());
  Host.close_span t;
  Host.finish t;
  (match Host.check t with
   | Ok () -> ()
   | Error msg -> Alcotest.fail msg);
  (* closing with nothing open is a typed error, not a crash *)
  match Host.close_span t with
  | () -> Alcotest.fail "close without an open span accepted"
  | exception Hb_error.Hb_error _ -> ()

let test_span_closes_on_raise () =
  let t = Host.create () in
  (try Host.with_span t "boom" (fun () -> failwith "deliberate")
   with Failure _ -> ());
  Host.finish t;
  (match Host.check t with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "raise left the tree ill-formed: %s" msg);
  match t.Host.root.Host.children_rev with
  | [ sp ] ->
    Alcotest.(check bool) "span closed despite the raise" true
      (Int64.compare sp.Host.wall_ns 0L >= 0)
  | _ -> Alcotest.fail "expected exactly one child"

let test_timed () =
  let v, tm = Host.timed (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 v;
  Alcotest.(check bool) "wall_ns non-negative" true (tm.Host.t_wall_ns >= 0)

(* ---- sinks ------------------------------------------------------------ *)

let test_sinks_parse_back () =
  let t = Host.create () in
  Host.with_span t "phase" (fun () -> Host.annotate t "instrs" 1000);
  Host.sample ~counts:[ ("runs", 7) ] t;
  Host.finish t;
  let jpath = tmp ".json" and cpath = tmp ".chrome.json" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove jpath with _ -> ());
      try Sys.remove cpath with _ -> ())
    (fun () ->
      Host.write_json jpath t;
      Host.write_chrome cpath t;
      let j = Json.of_string (read_file jpath) in
      (match Json.member "host" j with
       | Some (Json.String "hb-span-profile") -> ()
       | _ -> Alcotest.fail "span JSON missing its magic");
      (match Json.member "root" j with
       | Some _ -> ()
       | None -> Alcotest.fail "span JSON missing the root span");
      match Json.of_string (read_file cpath) with
      | Json.List (ev :: _ as evs) ->
        Alcotest.(check bool) "root + phase events" true
          (List.length evs >= 2);
        (match Json.member "ph" ev with
         | Some (Json.String "X") -> ()
         | _ -> Alcotest.fail "chrome events must be complete (ph=X)")
      | _ -> Alcotest.fail "chrome trace is not a JSON array")

(* ---- ambient profiler + export ---------------------------------------- *)

let test_ambient_and_export () =
  (* hooks are transparent when nothing is installed *)
  Alcotest.(check int) "span passthrough" 7 (Host.span "x" (fun () -> 7));
  Host.annotate_live "instrs" 1;
  Host.sample_live ();
  let t = Host.install () in
  ignore
    (Host.span "golden" (fun () ->
         Host.annotate_live "instrs" 1_000_000;
         Host.annotate_live "cycles" 2_000_000;
         1));
  Host.sample_live ~counts:[ ("runs", 25) ] ();
  Host.uninstall ();
  Host.finish t;
  (match Host.check t with
   | Ok () -> ()
   | Error msg -> Alcotest.fail msg);
  Alcotest.(check (list string)) "ambient spans landed" [ "golden" ]
    (List.map
       (fun (s : Host.span) -> s.Host.sp_name)
       (List.rev t.Host.root.Host.children_rev));
  let reg = Metrics.create () in
  Host.export t reg;
  let text = Metrics.to_prometheus reg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition has " ^ needle) true
        (contains text needle))
    [
      "hb_host_wall_ns";
      "hb_host_sim_ips";
      "hb_host_sim_cps";
      "hb_host_gc_minor_words";
      "hb_host_checkpoint_samples 1";
      "span=\"golden\"";
    ]

(* ---- progress --------------------------------------------------------- *)

let test_progress_tracker () =
  let pr = Progress.create () in
  Progress.begin_campaign pr ~label:"little" ~total:10 ~prior:2;
  Progress.seed_outcome pr ~outcome:"masked";
  Progress.seed_outcome pr ~outcome:"detected";
  Alcotest.(check int) "prior counts as completed" 2 pr.Progress.completed;
  Alcotest.(check (option (float 0.)) ) "no rate from prior alone" None
    (Progress.rate pr);
  Progress.start_run pr 4;
  Alcotest.(check (option int)) "current in flight" (Some 4)
    pr.Progress.current;
  Progress.finish_run pr ~outcome:"detected";
  Alcotest.(check int) "completed bumped" 3 pr.Progress.completed;
  Alcotest.(check (option int)) "nothing in flight" None pr.Progress.current;
  Alcotest.(check (list (pair string int))) "tally sorted and merged"
    [ ("detected", 2); ("masked", 1) ]
    pr.Progress.tally;
  (match Progress.eta_s pr with
   | None -> Alcotest.fail "one fresh run must yield an ETA"
   | Some e ->
     Alcotest.(check bool) "eta never negative" true (e >= 0.));
  let j = Progress.to_json pr in
  (match Json.member "label" j with
   | Some (Json.String "little") -> ()
   | _ -> Alcotest.fail "label missing from /progress JSON");
  Alcotest.(check bool) "render names the campaign" true
    (contains (Progress.render pr) "little");
  Progress.finish pr;
  Alcotest.(check bool) "finished" true pr.Progress.finished;
  (* ticker: starts and stops cleanly *)
  let stop = Progress.ticker ~period_s:0.01 pr in
  Thread.delay 0.03;
  stop ()

(* ---- serve ------------------------------------------------------------ *)

let test_parse_port () =
  List.iter
    (fun s ->
      match Serve.parse_port s with
      | p -> Alcotest.failf "accepted %S as port %d" s p
      | exception Hb_error.Hb_error (ctx, msg) ->
        Alcotest.(check string) "component" "serve" ctx.Hb_error.component;
        Alcotest.(check bool) ("usage hint for " ^ s) true
          (contains msg "--serve PORT"))
    [ "abc"; "0"; "-3"; "70000"; "" ];
  Alcotest.(check int) "valid port" 9090 (Serve.parse_port "9090");
  Alcotest.(check int) "trimmed" 80 (Serve.parse_port " 80 ")

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" path
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec loop () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          loop ()
        end
      in
      (try loop () with _ -> ());
      Buffer.contents buf)

let body_of response =
  match String.index_opt response '{' with
  | Some i -> String.sub response i (String.length response - i)
  | None -> Alcotest.failf "no JSON body in: %s" response

let test_serve_endpoints () =
  let pr = Progress.create () in
  Progress.begin_campaign pr ~label:"srv" ~total:5 ~prior:0;
  let reg = Metrics.create () in
  Metrics.set_counter reg "cache.misses" 3;
  let metrics () = Metrics.to_prometheus reg in
  let progress () = Progress.to_json pr in
  let srv = Serve.start ~metrics ~progress () in
  Fun.protect
    ~finally:(fun () -> Serve.stop srv)
    (fun () ->
      let port = Serve.port srv in
      Alcotest.(check bool) "ephemeral port resolved" true (port > 0);
      let h = http_get port "/healthz" in
      Alcotest.(check bool) "healthz 200" true (contains h "200 OK");
      Alcotest.(check bool) "healthz body" true (contains h "ok");
      let m = http_get port "/metrics" in
      Alcotest.(check bool) "openmetrics content type" true
        (contains m "application/openmetrics-text");
      Alcotest.(check bool) "series served" true
        (contains m "cache_misses 3");
      Alcotest.(check bool) "EOF framing" true (contains m "# EOF");
      let p = http_get port "/progress" in
      (match Json.member "label" (Json.of_string (body_of p)) with
       | Some (Json.String "srv") -> ()
       | _ -> Alcotest.fail "/progress body is not the tracker JSON");
      let nf = http_get port "/nope" in
      Alcotest.(check bool) "unknown path 404" true
        (contains nf "404 Not Found");
      (* a second server on the same (now bound) port is a typed error *)
      match Serve.start ~port ~metrics ~progress () with
      | s2 ->
        Serve.stop s2;
        Alcotest.fail "double bind accepted"
      | exception Hb_error.Hb_error (ctx, msg) ->
        Alcotest.(check string) "component" "serve" ctx.Hb_error.component;
        Alcotest.(check bool) "names the port" true
          (contains msg (string_of_int port)))

(* The reader is bounded: a connected-but-silent client gets a typed 408
   after the read timeout (the serve loop stays live for the next
   client), an oversized request gets a typed 413, and a custom handler
   hook takes precedence over the built-ins without shadowing them. *)
let test_serve_bounded_reader () =
  let metrics () = "" in
  let progress () = Json.Obj [] in
  let handler ~meth ~path ~body =
    if meth = "POST" && path = "/echo" then
      Some (Serve.response ~status:"200 OK" body)
    else None
  in
  let srv =
    Serve.start ~read_timeout_s:0.3 ~max_request:256 ~handler ~metrics
      ~progress ()
  in
  Fun.protect
    ~finally:(fun () -> Serve.stop srv)
    (fun () ->
      let port = Serve.port srv in
      (* connect and go silent: the server must answer 408, not hang *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          let buf = Bytes.create 4096 in
          let b = Buffer.create 256 in
          (try
             let rec loop () =
               let n = Unix.read fd buf 0 (Bytes.length buf) in
               if n > 0 then begin
                 Buffer.add_subbytes b buf 0 n;
                 loop ()
               end
             in
             loop ()
           with _ -> ());
          let r = Buffer.contents b in
          Alcotest.(check bool) "silent socket gets 408" true
            (contains r "408 Request Timeout");
          Alcotest.(check bool) "408 body explains the timeout" true
            (contains r "read timeout"));
      (* ... and the loop survives to serve the next client *)
      let h = http_get port "/healthz" in
      Alcotest.(check bool) "still serving after a timeout" true
        (contains h "200 OK");
      (* an oversized request is refused with a typed 413 *)
      let big = http_get port ("/" ^ String.make 400 'x') in
      Alcotest.(check bool) "oversized request gets 413" true
        (contains big "413 Content Too Large");
      Alcotest.(check bool) "still serving after a 413" true
        (contains (http_get port "/healthz") "200 OK");
      (* handler hook: takes POST /echo, defers everything else *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          let req =
            "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello"
          in
          ignore (Unix.write_substring fd req 0 (String.length req));
          let b = Buffer.create 256 in
          let buf = Bytes.create 4096 in
          (try
             let rec loop () =
               let n = Unix.read fd buf 0 (Bytes.length buf) in
               if n > 0 then begin
                 Buffer.add_subbytes b buf 0 n;
                 loop ()
               end
             in
             loop ()
           with _ -> ());
          Alcotest.(check bool) "handler hook answers" true
            (contains (Buffer.contents b) "hello"));
      Alcotest.(check bool) "built-ins still reachable" true
        (contains (http_get port "/healthz") "200 OK");
      (* a non-GET with no handler match is a 405, not a hang *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          let req =
            "DELETE /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
          in
          ignore (Unix.write_substring fd req 0 (String.length req));
          let b = Buffer.create 256 in
          let buf = Bytes.create 4096 in
          (try
             let rec loop () =
               let n = Unix.read fd buf 0 (Bytes.length buf) in
               if n > 0 then begin
                 Buffer.add_subbytes b buf 0 n;
                 loop ()
               end
             in
             loop ()
           with _ -> ());
          Alcotest.(check bool) "non-GET without handler is 405" true
            (contains (Buffer.contents b) "405 Method Not Allowed")))

(* ---- campaign byte-identity under the host plane ----------------------- *)

let little_src =
  {|
int main() {
  int *cells[40];
  int i;
  int sum;
  for (i = 0; i < 40; i++) {
    cells[i] = (int*)malloc(8);
    cells[i][0] = i * 3;
    cells[i][1] = i;
  }
  sum = 0;
  for (i = 0; i < 40; i++) {
    sum = sum + cells[i][0];
  }
  print_int(sum);
  return 0;
}
|}

let maker () =
  let image, globals = Build.compile ~mode:Codegen.Hardbound little_src in
  let config = Build.config_for Codegen.Hardbound in
  fun () -> Machine.create ~config ~globals image

let test_campaign_progress_identity () =
  let mk = maker () in
  let cfg =
    { Campaign.default with Campaign.label = "little"; runs = 25; seed = 5 }
  in
  let plain = Campaign.run ~mk cfg in
  let pr = Progress.create () in
  let prof = Host.install () in
  let tracked =
    Fun.protect ~finally:Host.uninstall (fun () ->
        Campaign.run ~progress:pr ~mk cfg)
  in
  Host.finish prof;
  (match Host.check prof with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "campaign profile ill-formed: %s" msg);
  Alcotest.(check (list string)) "campaign phases under spans"
    [ "golden"; "runs" ]
    (List.map
       (fun (s : Host.span) -> s.Host.sp_name)
       (List.rev prof.Host.root.Host.children_rev));
  (* the whole point: the report cannot see the host plane *)
  Alcotest.(check string) "byte-identical report"
    (Json.to_string (Campaign.to_json plain))
    (Json.to_string (Campaign.to_json tracked));
  Alcotest.(check int) "tracker saw every run" cfg.Campaign.runs
    pr.Progress.completed;
  Alcotest.(check bool) "tracker finished" true pr.Progress.finished;
  Alcotest.(check int) "tally sums to runs" cfg.Campaign.runs
    (List.fold_left (fun a (_, n) -> a + n) 0 pr.Progress.tally)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "host"
    [
      ("clock", [ tc "monotone, clamped, unit conversions" test_clock_monotone ]);
      ( "spans",
        [
          tc "child-sum <= parent identity holds" test_span_tree_identity;
          tc "doctored child-sum rejected" test_doctored_sum_rejected;
          tc "open span flagged; close misuse typed" test_open_span_is_an_error;
          tc "span closes when the body raises" test_span_closes_on_raise;
          tc "inline timing" test_timed;
          tc "JSON + chrome sinks parse back" test_sinks_parse_back;
          tc "ambient profiler + hb_host_* export" test_ambient_and_export;
        ] );
      ( "progress",
        [ tc "tallies, ETA clamp, ticker lifecycle" test_progress_tracker ] );
      ( "serve",
        [
          tc "--serve port validation is typed" test_parse_port;
          tc "endpoints end-to-end on an ephemeral port" test_serve_endpoints;
          tc "bounded reader: 408/413, handler hook, 405"
            test_serve_bounded_reader;
        ] );
      ( "campaign",
        [
          tc "byte-identical report under progress + spans"
            test_campaign_progress_identity;
        ] );
    ]
