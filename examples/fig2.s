# Figure 2 of the paper, as runnable assembly:
#
#   dune exec bin/hardbound_run.exe -- examples/fig2.s --asm
#
# A 4-byte object at the start of the globals region stands in for the
# figure's address 0x1000.  The first load passes its implicit bounds
# check and prints the loaded byte; the second (offset 5) traps.

.entry main
.func main
  li t0, 0x00100000          ; set   R1 <- base of a 4-byte region
  setbound t1, t0, 4         ; R2 <- {value; base; base+4}
  lb a0, 2(t1)               ; read base+2: check passes
  syscall print_int
  li a0, 10
  syscall print_char
  add t3, t1, 1              ; R4 <- R2 + 1 (bounds copied unchanged)
  lb a0, 5(t3)               ; read base+6: check FAILS here
  syscall print_int
  li a0, 0
  syscall exit
.end
