(* Quickstart: the two levels of the public API.

   1. The hardware level — build an ISA program by hand (Figure 2 of the
      paper, literally) and watch the implicit bounds check fire.
   2. The compiler level — compile a C program with full HardBound
      instrumentation and run it.

   Run with: dune exec examples/quickstart.exe *)

open Hb_isa.Types
module Program = Hb_isa.Program
module Machine = Hb_cpu.Machine
module Codegen = Hb_minic.Codegen

let section title = Printf.printf "\n--- %s ---\n" title

(* ---- 1. Figure 2 at the ISA level ------------------------------------- *)

let () =
  section "Figure 2: setbound, implicit checks, bounds propagation";
  let obj = Hb_mem.Layout.globals_base in
  let run body =
    let image =
      Program.link { funcs = [ { name = "main"; body } ]; entry = "main" }
    in
    let m = Machine.create ~globals:"ABCDEFGH" image in
    Machine.run m
  in
  (* set R1 <- obj; setbound R2 <- R1,4  -- as done inside malloc(4) *)
  let prologue =
    [ Li (t0, obj); Setbound { dst = t1; src = t0; size = Imm 4 } ]
  in
  let exit0 = [ Li (a0, 0); Syscall Sys_exit ] in
  let line3 = (* read obj+2: in bounds *)
    prologue
    @ [ Load { dst = t2; base = t1; off = 2; width = W1; signed = false } ]
    @ exit0
  in
  let line4 = (* read obj+5: out of bounds *)
    prologue
    @ [ Load { dst = t2; base = t1; off = 5; width = W1; signed = false } ]
    @ exit0
  in
  let line5_7 = (* increment the pointer: bounds are copied unchanged *)
    prologue
    @ [ Alu (Add, t3, t1, Imm 1);
        Load { dst = t2; base = t3; off = 5; width = W1; signed = false } ]
    @ exit0
  in
  Printf.printf "load Mem[R2+2]          -> %s\n"
    (Machine.status_name (run line3));
  Printf.printf "load Mem[R2+5]          -> %s\n"
    (Machine.status_name (run line4));
  Printf.printf "R4 <- R2+1; Mem[R4+5]   -> %s\n"
    (Machine.status_name (run line5_7))

(* ---- 2. The compiler level -------------------------------------------- *)

let buggy_program = {|
int sum(int *a, int n) {
  int s;
  int i;
  s = 0;
  for (i = 0; i <= n; i++) {   /* classic off-by-one */
    s = s + a[i];
  }
  return s;
}

int main() {
  int *a;
  int i;
  a = (int*)malloc(10 * sizeof(int));
  for (i = 0; i < 10; i++) { a[i] = i; }
  print_str("sum = ");
  print_int(sum(a, 10));
  print_nl();
  return 0;
}
|}

let () =
  section "Compiling C with full HardBound instrumentation";
  List.iter
    (fun mode ->
      let status, m = Hb_runtime.Build.run ~mode buggy_program in
      Printf.printf "%-12s -> %-60s output: %S\n" (Codegen.mode_name mode)
        (Machine.status_name status) (Machine.output m))
    [ Codegen.Nochecks; Codegen.Hardbound ];
  print_endline
    "\nThe baseline silently reads past the allocation; HardBound traps the\n\
     dereference the moment the off-by-one index is used."

(* ---- 3. Observability -------------------------------------------------- *)

let () =
  section "Observability: trace ring, violation report, flat profile";
  (* Same buggy program, but with a tracer and the per-function profile
     attached before running (the `hardbound_run` CLI flags --trace,
     --trace-events and --profile do exactly this). *)
  let mode = Codegen.Hardbound in
  let image, globals = Hb_runtime.Build.compile ~mode buggy_program in
  let config = Hb_runtime.Build.config_for mode in
  let m = Machine.create ~config ~globals image in
  Machine.attach_tracer m (Hb_obs.Trace.create ~capacity:4 ());
  Machine.enable_profile m;
  ignore (Machine.run m);
  (match Machine.violation_report m with
   | Some report -> print_string report
   | None -> ());
  print_newline ();
  (match Machine.profile m with
   | Some p -> print_string (Hb_obs.Profile.to_table p)
   | None -> ())
